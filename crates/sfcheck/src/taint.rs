//! Interprocedural determinism-taint analysis: the `determinism-taint`
//! and `obs-volatile-discipline` lints.
//!
//! The repo's output contract (DESIGN.md §7) is that every artifact —
//! metrics JSON, JSONL trace, CSV/JSON writers, `SMARTFEAT_BENCH_JSON`
//! lines — is a pure function of inputs and seed. This pass tracks
//! *values* that can violate that contract from their sources to the
//! fns that emit artifacts:
//!
//! - **sources** (the taint lattice is the powerset of these four kinds):
//!   - `Wall` — `Instant::now()` / `SystemTime::now()` outside the
//!     `obs::global::Stopwatch` gate (a Stopwatch read stays inside
//!     `crates/obs`, which this pass never treats as a source);
//!   - `Env` — `std::env::var`/`var_os`/`vars` outside `crates/{par,obs}`
//!     (the sanctioned resolution points);
//!   - `ThreadCount` — `smartfeat_par::resolve_threads` or
//!     `available_parallelism` results;
//!   - `HashIter` — iteration over a std `HashMap`/`HashSet` local.
//! - **propagation** — through let-bindings and pattern binds, field and
//!   index projections, method receivers, call arguments (when the callee
//!   returns a param-derived value), fn returns via per-fn summaries
//!   computed to a fixpoint over the call graph, and macro invocations:
//!   a macro's value carries the union of its argument taints plus any
//!   local interpolated by name inside a literal argument
//!   (`format!("{threads}")`). Macros are plain transformations — never
//!   a source or sink themselves — and tokens that parse as neither an
//!   argument expression nor a `{ident}` interpolation stay a blind
//!   spot. The interprocedural summaries see through rebindings: a
//!   `let s = n;` between a parameter and a macro or sink argument does
//!   not launder the parameter away ([`param_derived_bindings`]).
//! - **sinks** — fns marked `// sfcheck:output-sink` (and the
//!   `// sfcheck:metrics-report` recorder), plus any fn that forwards a
//!   parameter to a sink (a positionless summary, also a fixpoint).
//! - **blessing** — calls into `// sfcheck:parallel-entry` fns return
//!   untainted values: the ordered pool is deterministic by contract, so
//!   a thread count flowing *into* `par_map` never taints what flows out.
//!
//! A finding fires at a call site passing a tainted value (argument or
//! receiver) to a sink-reaching fn; the PR-3 `volatile` metrics section
//! is the one blessed route for such values, which the companion
//! `obs-volatile-discipline` lint enforces inside `crates/obs`: fields
//! annotated `// sfcheck:volatile-field(name)` may only appear in
//! `// sfcheck:metrics-report` statements that also mention the
//! `"volatile"` key. Both lints waive with the usual inline syntax.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Block, Expr, Pos, Stmt};
use crate::callgraph::STD_METHOD_NAMES;
use crate::dataflow::{finding_at, PARALLEL_ENTRY};
use crate::lexer::{lex, TokenKind};
use crate::lints::Finding;
use crate::resolve::{FnId, Workspace};
use crate::walker::FileClass;

/// Marker naming artifact-emitting fns (CSV/JSON writers, trace/metrics
/// recorders, bench emitters).
pub const OUTPUT_SINK: &str = "output-sink";
/// Marker naming the obs metrics-report builder.
pub const METRICS_REPORT: &str = "metrics-report";

/// One nondeterminism source kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Taint {
    Wall,
    Env,
    ThreadCount,
    HashIter,
}

impl Taint {
    fn name(self) -> &'static str {
        match self {
            Taint::Wall => "wall-clock",
            Taint::Env => "environment",
            Taint::ThreadCount => "thread-count",
            Taint::HashIter => "hash-iteration",
        }
    }
}

type Taints = BTreeSet<Taint>;

/// Receiver methods that iterate a hash collection.
const HASH_ITER_METHODS: [&str; 8] = [
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "values",
];

/// Per-fn interprocedural summaries, computed to a fixpoint.
struct Summaries {
    /// Taints of the fn's returned value (trailing expression).
    ret: Vec<Taints>,
    /// The fn emits to an artifact sink when passed data (marked, or
    /// forwards a parameter to a sink-reaching callee).
    sink: Vec<bool>,
    /// The trailing expression mentions a parameter or `self`, so
    /// argument taint flows through to the return value.
    param_to_ret: Vec<bool>,
    /// Parallel-entry fns: calls into these return untainted values.
    entries: BTreeSet<FnId>,
    /// Bodies in `crates/obs` are never analyzed (the sanctioned clock
    /// domain); only their markers participate.
    analyzed: Vec<bool>,
}

fn resolve_path_call(ws: &Workspace, caller: FnId, segments: &[String]) -> Vec<FnId> {
    let info = &ws.fns[caller];
    ws.resolve_path(info.file, &info.module, info.impl_ty.as_deref(), segments)
}

/// Unambiguous workspace method dispatch, minus std-shadowed names —
/// the same approximation the call graph uses.
fn resolve_method(ws: &Workspace, method: &str) -> Option<FnId> {
    if STD_METHOD_NAMES.contains(&method) {
        return None;
    }
    ws.methods
        .get(method)
        .filter(|c| c.len() == 1)
        .map(|c| c[0])
}

/// The trailing expression of a body: the last expression statement.
fn trailing_expr(body: &Block) -> Option<&Expr> {
    body.stmts.iter().rev().find_map(|s| match s {
        Stmt::Expr(e) => Some(e),
        _ => None,
    })
}

/// One intra-fn pass: forward walk in source order with a flat binding
/// environment (shadowing ignored — union over writers, conservative in
/// the direction of more taint, like [`crate::dataflow`]'s envs).
struct FnPass<'a> {
    ws: &'a Workspace,
    id: FnId,
    /// The file's crate dir (`"ml"`, `"bench"`, …) for source gating.
    crate_dir: &'a str,
    sums: &'a Summaries,
    env: BTreeMap<String, Taints>,
    /// Locals whose type or initializer names a std hash collection.
    hash_locals: BTreeSet<String>,
    /// Sink-call findings, only collected on the emission pass.
    findings: Option<Vec<(Pos, Taints, String)>>,
}

impl<'a> FnPass<'a> {
    fn new(ws: &'a Workspace, id: FnId, sums: &'a Summaries, collect: bool) -> FnPass<'a> {
        let crate_dir = ws.files[ws.fns[id].file].crate_dir.as_str();
        FnPass {
            ws,
            id,
            crate_dir,
            sums,
            env: BTreeMap::new(),
            hash_locals: BTreeSet::new(),
            findings: collect.then(Vec::new),
        }
    }

    fn bind(&mut self, name: &str, taints: &Taints) {
        if !taints.is_empty() && name != "_" {
            self.env.entry(name.to_string()).or_default().extend(taints);
        }
    }

    fn block(&mut self, b: &Block) -> Taints {
        let mut last = Taints::new();
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let(l) => {
                    let hashy = l.ty.contains("HashMap") || l.ty.contains("HashSet") || {
                        let mut seen = false;
                        if let Some(init) = &l.init {
                            init.walk(&mut |e| {
                                if let Expr::Path(p) = e {
                                    if p.segments.iter().any(|s| s == "HashMap" || s == "HashSet") {
                                        seen = true;
                                    }
                                }
                            });
                        }
                        seen
                    };
                    if hashy {
                        self.hash_locals.insert(l.name.clone());
                        self.hash_locals.extend(l.bound.iter().cloned());
                    }
                    let t = l.init.as_ref().map(|e| self.expr(e)).unwrap_or_default();
                    self.bind(&l.name, &t);
                    for name in &l.bound {
                        self.bind(name, &t);
                    }
                    last = Taints::new();
                }
                Stmt::Expr(e) => last = self.expr(e),
                Stmt::Item(_) => last = Taints::new(), // nested fns are their own FnIds
            }
        }
        last
    }

    fn expr(&mut self, e: &Expr) -> Taints {
        match e {
            Expr::Lit(_) => Taints::new(),
            Expr::Macro(m) => {
                // Taint flows through macros: parsed args directly
                // (`format!("{}", x)`) and locals interpolated inside
                // literal args (`format!("{x}")`).
                let mut t = Taints::new();
                let mut names: Vec<String> = Vec::new();
                for a in &m.args {
                    t.extend(self.expr(a));
                    a.walk(&mut |sub| {
                        if let Expr::Lit(l) = sub {
                            interpolated_idents(&l.text, &mut names);
                        }
                    });
                }
                for name in names {
                    if let Some(extra) = self.env.get(&name) {
                        t.extend(extra.iter().copied());
                    }
                }
                t
            }
            Expr::Path(p) => {
                if p.segments.len() == 1 {
                    self.env.get(&p.segments[0]).cloned().unwrap_or_default()
                } else {
                    Taints::new()
                }
            }
            Expr::Field(f) => self.expr(&f.base),
            Expr::Index(i) => {
                let mut t = self.expr(&i.base);
                t.extend(self.expr(&i.index));
                t
            }
            Expr::Block(b) => self.block(b),
            Expr::Closure(c) => {
                // Analyze the body for sink calls (the env carries the
                // enclosing fn's bindings — closures capture by reference
                // here); the closure *value* itself is untainted.
                self.expr(&c.body);
                Taints::new()
            }
            Expr::Seq(s) => {
                // `if let Ok(x) = tainted { … }` / `match tainted { … }`:
                // the scrutinee and the arm bodies share this node. The
                // scrutinee comes first in source order, so bind after
                // every child — arm bodies then see the scrutinee's taint
                // on the bound names (conservatively, the running union).
                let mut t = Taints::new();
                for child in &s.children {
                    t.extend(self.expr(child));
                    for name in &s.binds {
                        self.bind(name, &t);
                    }
                }
                t
            }
            Expr::Call(c) => {
                let arg_taints: Vec<Taints> = c.args.iter().map(|a| self.expr(a)).collect();
                let Expr::Path(p) = &*c.callee else {
                    let mut t = self.expr(&c.callee);
                    for a in &arg_taints {
                        t.extend(a.iter().copied());
                    }
                    return t;
                };
                if let Some(atom) = self.source_atom(&p.segments) {
                    return [atom].into_iter().collect();
                }
                let resolved = resolve_path_call(self.ws, self.id, &p.segments);
                self.call_result(e.pos(), &resolved, None, &arg_taints)
            }
            Expr::MethodCall(m) => {
                let recv_t = self.expr(&m.recv);
                let arg_taints: Vec<Taints> = m.args.iter().map(|a| self.expr(a)).collect();
                // Hash-collection iteration is a source: visit order is
                // the hasher's, not the data's.
                if HASH_ITER_METHODS.contains(&m.method.as_str()) {
                    if let Expr::Path(p) = &*m.recv {
                        if p.segments.len() == 1 && self.hash_locals.contains(&p.segments[0]) {
                            let mut t = recv_t;
                            t.insert(Taint::HashIter);
                            return t;
                        }
                    }
                }
                let resolved: Vec<FnId> = resolve_method(self.ws, &m.method).into_iter().collect();
                self.call_result(m.pos, &resolved, Some(&recv_t), &arg_taints)
            }
        }
    }

    /// A call that *is* a source, independent of its arguments.
    fn source_atom(&self, segments: &[String]) -> Option<Taint> {
        let last = segments.last().map(String::as_str)?;
        let second = segments.len().checked_sub(2).map(|i| segments[i].as_str());
        if last == "now" && matches!(second, Some("Instant" | "SystemTime")) {
            return Some(Taint::Wall);
        }
        if matches!(last, "var" | "var_os" | "vars")
            && second == Some("env")
            && !matches!(self.crate_dir, "par" | "obs")
        {
            return Some(Taint::Env);
        }
        if last == "available_parallelism" || last == "resolve_threads" {
            return Some(Taint::ThreadCount);
        }
        None
    }

    /// Result taint of a resolved call, plus the sink check.
    fn call_result(
        &mut self,
        pos: Pos,
        resolved: &[FnId],
        recv: Option<&Taints>,
        args: &[Taints],
    ) -> Taints {
        let mut incoming = Taints::new();
        if let Some(r) = recv {
            incoming.extend(r.iter().copied());
        }
        for a in args {
            incoming.extend(a.iter().copied());
        }
        if resolved.is_empty() {
            // Unresolved (std, ambiguous): a plain transformation — taint
            // flows through, no source, no sink.
            return incoming;
        }
        if resolved.iter().any(|t| self.sums.entries.contains(t)) {
            // Parallel-entry blessing: the ordered pool's output is
            // deterministic regardless of the thread count fed to it.
            return Taints::new();
        }
        if !incoming.is_empty() && self.findings.is_some() {
            if let Some(&sink) = resolved.iter().find(|t| self.sums.sink[**t]) {
                let qname = self.ws.fns[sink].qname.clone();
                if let Some(findings) = self.findings.as_mut() {
                    findings.push((pos, incoming.clone(), qname));
                }
            }
        }
        let mut out = Taints::new();
        for &t in resolved {
            out.extend(self.sums.ret[t].iter().copied());
            if self.sums.param_to_ret[t] {
                out.extend(incoming.iter().copied());
            }
        }
        out
    }
}

/// Identifiers interpolated format-style inside a literal's text:
/// `"{threads}"` and `"{threads:>8}"` name `threads`; `{{` escapes are
/// skipped and positional or empty braces (`{}`, `{0}`) name nothing.
fn interpolated_idents(text: &str, names: &mut Vec<String>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
            j += 1;
        }
        let name = &text[start..j];
        if !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            names.push(name.to_string());
        }
        i = j + 1;
    }
}

/// Does the expression mention a parameter of `id` (or `self`), either
/// directly or through a binding in `derived`? Macro arguments count
/// both as parsed expressions (via the walk) and as `{ident}`
/// interpolations inside literal arguments, so `format!("{text}")`
/// forwards `text` like `format!("{}", text)` does — and so does
/// `let s = text; format!("{}", s)`, via the derived set.
fn mentions_param(ws: &Workspace, id: FnId, derived: &BTreeSet<String>, e: &Expr) -> bool {
    let info = &ws.fns[id];
    let named = |head: &str| {
        head == "self" || info.params.iter().any(|prm| prm.name == head) || derived.contains(head)
    };
    let mut hit = false;
    e.walk(&mut |sub| match sub {
        Expr::Path(p) => {
            if let Some(head) = p.segments.first() {
                if named(head) {
                    hit = true;
                }
            }
        }
        Expr::Macro(m) => {
            let mut names: Vec<String> = Vec::new();
            for a in &m.args {
                a.walk(&mut |inner| {
                    if let Expr::Lit(l) = inner {
                        interpolated_idents(&l.text, &mut names);
                    }
                });
            }
            if names.iter().any(|n| named(n)) {
                hit = true;
            }
        }
        _ => {}
    });
    hit
}

/// Every `let` with an initializer anywhere in the body, as
/// `(bound names, init)` pairs — including lets inside nested blocks,
/// match/if-let arms, and closure bodies, matching the reach of
/// [`mentions_param`]'s walk.
fn collect_lets<'a>(b: &'a Block, out: &mut Vec<(Vec<&'a str>, &'a Expr)>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    let mut names: Vec<&str> = Vec::new();
                    if l.name != "_" {
                        names.push(l.name.as_str());
                    }
                    names.extend(l.bound.iter().map(String::as_str));
                    if !names.is_empty() {
                        out.push((names, init));
                    }
                    nested_lets(init, out);
                }
            }
            Stmt::Expr(e) => nested_lets(e, out),
            Stmt::Item(_) => {}
        }
    }
}

/// Descend one expression, recursing into each nested block via
/// [`collect_lets`] — structural recursion, so no block is visited
/// twice.
fn nested_lets<'a>(e: &'a Expr, out: &mut Vec<(Vec<&'a str>, &'a Expr)>) {
    match e {
        Expr::Block(b) => collect_lets(b, out),
        Expr::Closure(c) => nested_lets(&c.body, out),
        Expr::Seq(s) => {
            for child in &s.children {
                nested_lets(child, out);
            }
        }
        Expr::Call(c) => {
            nested_lets(&c.callee, out);
            for a in &c.args {
                nested_lets(a, out);
            }
        }
        Expr::MethodCall(m) => {
            nested_lets(&m.recv, out);
            for a in &m.args {
                nested_lets(a, out);
            }
        }
        Expr::Field(f) => nested_lets(&f.base, out),
        Expr::Index(i) => {
            nested_lets(&i.base, out);
            nested_lets(&i.index, out);
        }
        Expr::Macro(m) => {
            for a in &m.args {
                nested_lets(a, out);
            }
        }
        Expr::Lit(_) | Expr::Path(_) => {}
    }
}

/// Bindings in `id`'s body that (transitively) derive from a parameter:
/// `let s = n;` puts `s` in the set when `n` is a param, and
/// `let t = s;` then follows. Computed as a fixpoint so declaration
/// order never matters; the set feeds [`mentions_param`] so a rebinding
/// cannot launder param-ness out of the summaries.
fn param_derived_bindings(ws: &Workspace, id: FnId) -> BTreeSet<String> {
    let Some(body) = ws.body_of(id) else {
        return BTreeSet::new();
    };
    let mut lets: Vec<(Vec<&str>, &Expr)> = Vec::new();
    collect_lets(body, &mut lets);
    let mut derived = BTreeSet::new();
    loop {
        let mut changed = false;
        for (names, init) in &lets {
            if names.iter().all(|n| derived.contains(*n)) {
                continue;
            }
            if mentions_param(ws, id, &derived, init) {
                for n in names {
                    changed |= derived.insert((*n).to_string());
                }
            }
        }
        if !changed {
            break;
        }
    }
    derived
}

fn build_summaries(ws: &Workspace) -> Summaries {
    let n = ws.fns.len();
    let entries: BTreeSet<FnId> = ws.marked(PARALLEL_ENTRY).into_iter().collect();
    let mut sums = Summaries {
        ret: vec![Taints::new(); n],
        sink: vec![false; n],
        param_to_ret: vec![false; n],
        entries,
        analyzed: vec![false; n],
    };
    // Per-fn param-derived binding sets, computed once: both summary
    // passes below ask "does this expression carry a parameter?", and
    // the answer must see through `let s = n;` rebindings.
    let mut derived: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for id in 0..n {
        let info = &ws.fns[id];
        sums.sink[id] = info
            .markers
            .iter()
            .any(|m| m == OUTPUT_SINK || m == METRICS_REPORT);
        sums.analyzed[id] =
            !info.is_test && ws.files[info.file].crate_dir != "obs" && ws.body_of(id).is_some();
        if sums.analyzed[id] {
            derived[id] = param_derived_bindings(ws, id);
            if let Some(t) = ws.body_of(id).and_then(trailing_expr) {
                sums.param_to_ret[id] = mentions_param(ws, id, &derived[id], t);
            }
        }
    }

    // Sink fixpoint: a fn that passes a param-mentioning expression to a
    // sink-reaching call is itself sink-reaching (positionless summary).
    loop {
        let mut changed = false;
        for id in 0..n {
            if sums.sink[id] || !sums.analyzed[id] {
                continue;
            }
            let Some(body) = ws.body_of(id) else { continue };
            let mut reaches = false;
            crate::ast::walk_block(body, &mut |e| {
                if reaches {
                    return;
                }
                let (targets, feeds): (Vec<FnId>, bool) = match e {
                    Expr::Call(c) => {
                        let Expr::Path(p) = &*c.callee else { return };
                        (
                            resolve_path_call(ws, id, &p.segments),
                            c.args
                                .iter()
                                .any(|a| mentions_param(ws, id, &derived[id], a)),
                        )
                    }
                    Expr::MethodCall(m) => (
                        resolve_method(ws, &m.method).into_iter().collect(),
                        m.args
                            .iter()
                            .any(|a| mentions_param(ws, id, &derived[id], a))
                            || mentions_param(ws, id, &derived[id], &m.recv),
                    ),
                    _ => return,
                };
                if feeds && targets.iter().any(|t| sums.sink[*t]) {
                    reaches = true;
                }
            });
            if reaches {
                sums.sink[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Return-taint fixpoint: monotone over a finite lattice, so this
    // terminates; the bound is a safety net against resolver cycles.
    for _round in 0..16 {
        let mut changed = false;
        for id in 0..n {
            if !sums.analyzed[id] {
                continue;
            }
            let Some(body) = ws.body_of(id) else { continue };
            let mut pass = FnPass::new(ws, id, &sums, false);
            let ret = pass.block(body);
            if !ret.is_subset(&sums.ret[id]) {
                sums.ret[id].extend(ret);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Run the `determinism-taint` lint. `dirty` scopes *emission* (and the
/// per-fn walks that produce it) to the given files; summaries are
/// always computed over the whole workspace, so a clean file's cached
/// findings stay byte-identical to a cold run's.
///
/// The companion `obs-volatile-discipline` lint is [`run_volatile`], not
/// part of this pass: its verdicts depend on comment annotations the
/// cache's dirty closure cannot see, so it must never be scoped.
pub fn run(ws: &Workspace, dirty: Option<&BTreeSet<usize>>) -> Vec<Finding> {
    let mut out = Vec::new();
    let sums = build_summaries(ws);
    for id in 0..ws.fns.len() {
        let info = &ws.fns[id];
        if !sums.analyzed[id]
            || ws.files[info.file].class != FileClass::Lib
            || dirty.is_some_and(|d| !d.contains(&info.file))
        {
            continue;
        }
        let Some(body) = ws.body_of(id) else { continue };
        let mut pass = FnPass::new(ws, id, &sums, true);
        pass.block(body);
        for (pos, taints, sink) in pass.findings.unwrap_or_default() {
            let kinds: Vec<&str> = taints.iter().map(|t| t.name()).collect();
            out.push(finding_at(
                ws,
                info.file,
                pos,
                "determinism-taint",
                format!(
                    "{}-tainted value flows into output sink `{sink}`; artifacts must be \
                     pure functions of inputs and seed — route the value through the obs \
                     `volatile` section or waive with a reason",
                    kinds.join("+")
                ),
            ));
        }
    }
    out
}

/// Run the `obs-volatile-discipline` lint, always over the whole
/// workspace. The volatile-field set is harvested from `// sfcheck:…`
/// comments, which are invisible to both the cache's global fingerprint
/// and its call-graph dirty closure — an annotation edit in one obs file
/// must flip verdicts in another, so this pass is never scoped to a
/// dirty set and its findings are never replayed from the cache.
pub fn run_volatile(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    volatile_discipline(ws, &mut out);
    out
}

/// Fields declared `// sfcheck:volatile-field(name)` anywhere in
/// `crates/obs`. The annotation names the field explicitly so the
/// harvest never guesses from layout.
fn volatile_fields(ws: &Workspace) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    for file in &ws.files {
        if file.crate_dir != "obs" {
            continue;
        }
        for tok in lex(&file.text) {
            if tok.kind != TokenKind::LineComment {
                continue;
            }
            let Some(at) = tok.text.find("sfcheck:volatile-field(") else {
                continue;
            };
            let rest = &tok.text[at + "sfcheck:volatile-field(".len()..];
            if let Some((name, _)) = rest.split_once(')') {
                let name = name.trim();
                if !name.is_empty() {
                    fields.insert(name.to_string());
                }
            }
        }
    }
    fields
}

/// `obs-volatile-discipline`: inside `// sfcheck:metrics-report` fns,
/// any statement touching a volatile field must also mention the
/// `"volatile"` key — statement granularity, so the one conditional that
/// builds the volatile section passes and a field smuggled into another
/// section fires.
fn volatile_discipline(ws: &Workspace, out: &mut Vec<Finding>) {
    let fields = volatile_fields(ws);
    if fields.is_empty() {
        return;
    }
    for id in ws.marked(METRICS_REPORT) {
        let info = &ws.fns[id];
        if info.is_test {
            continue;
        }
        let Some(body) = ws.body_of(id) else { continue };
        for stmt in &body.stmts {
            let exprs: Vec<&Expr> = match stmt {
                Stmt::Let(l) => l.init.iter().collect(),
                Stmt::Expr(e) => vec![e],
                Stmt::Item(_) => continue,
            };
            let mut hit: Option<(Pos, String)> = None;
            let mut blessed = false;
            for e in exprs {
                e.walk(&mut |sub| match sub {
                    Expr::Field(f) if fields.contains(&f.name) => {
                        if hit.is_none() {
                            hit = Some((sub.pos(), f.name.clone()));
                        }
                    }
                    Expr::Lit(l) if l.text.contains("volatile") => blessed = true,
                    _ => {}
                });
            }
            if let Some((pos, name)) = hit {
                if !blessed {
                    out.push(finding_at(
                        ws,
                        info.file,
                        pos,
                        "obs-volatile-discipline",
                        format!(
                            "volatile field `{name}` reaches the metrics report outside the \
                             `\"volatile\"` section; thread- and wall-dependent values may \
                             only be reported under that key"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::walker::{classify, SourceFile};

    fn file(rel: &str, text: &str) -> (SourceFile, crate::ast::File) {
        (
            SourceFile {
                rel_path: rel.to_string(),
                text: text.to_string(),
                class: classify(rel),
                crate_dir: crate::walker::crate_dir_of(rel),
            },
            parse(&lex(text)),
        )
    }

    fn manifest(rel: &str, name: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            text: format!("[package]\nname = \"{name}\"\n"),
            class: classify(rel),
            crate_dir: crate::walker::crate_dir_of(rel),
        }
    }

    /// A consumer crate next to a sink-bearing frame crate, a marked par
    /// crate, and an obs crate with a metrics report.
    fn ws_of(core: &str) -> Workspace {
        let manifests = vec![
            manifest("crates/par/Cargo.toml", "smartfeat-par"),
            manifest("crates/frame/Cargo.toml", "smartfeat-frame"),
            manifest("crates/obs/Cargo.toml", "smartfeat-obs"),
            manifest("crates/core/Cargo.toml", "smartfeat"),
        ];
        let parsed = vec![
            file(
                "crates/par/src/lib.rs",
                "// sfcheck:parallel-entry\n\
                 pub fn par_map<R, F>(threads: usize, items: usize, f: F) -> Vec<R> { vec![] }\n\
                 pub fn resolve_threads(req: usize) -> usize { req }",
            ),
            file(
                "crates/frame/src/csv.rs",
                "// sfcheck:output-sink\npub fn write_csv(text: &str) {}",
            ),
            file(
                "crates/obs/src/lib.rs",
                "pub struct WorkStat {\n// sfcheck:volatile-field(ns)\npub ns: u64,\npub count: u64,\n}\n\
                 pub struct Rec;\nimpl Rec {\n\
                 // sfcheck:metrics-report\n\
                 pub fn report(&self, v: WorkStat) -> u64 {\nlet a = v.count;\n\
                 let b = pair(\"volatile\", v.ns);\na\n}\n}\n\
                 pub fn pair(k: &str, v: u64) -> u64 { v }",
            ),
            file("crates/core/src/lib.rs", core),
        ];
        crate::resolve::build(parsed, &manifests)
    }

    /// Both taint-family lints over a workspace, like the pipeline runs.
    fn run_all(ws: &Workspace) -> Vec<Finding> {
        let mut out = run(ws, None);
        out.extend(run_volatile(ws));
        out
    }

    fn run_on(core: &str) -> Vec<Finding> {
        run_all(&ws_of(core))
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn env_read_flowing_to_sink_is_flagged() {
        let findings = run_on(
            "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
             let path = std::env::var(\"OUT\").unwrap_or_default();\n\
             write_csv(&path);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
        assert!(findings[0].message.contains("environment"));
        assert!(findings[0].message.contains("write_csv"));
    }

    #[test]
    fn untainted_sink_call_and_tainted_nonsink_are_clean() {
        let findings = run_on(
            "use smartfeat_frame::csv::write_csv;\npub fn ok(rows: &str) {\n\
             let t = std::env::var(\"MODE\").unwrap_or_default();\n\
             let n = t.len();\nlocal_only(n);\nwrite_csv(rows);\n}\n\
             fn local_only(n: usize) -> usize { n }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn taint_propagates_through_helper_returns() {
        let findings = run_on(
            "use smartfeat_frame::csv::write_csv;\n\
             fn pick() -> String { std::env::var(\"OUT\").unwrap_or_default() }\n\
             pub fn dump() {\nlet path = pick();\nwrite_csv(&path);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
    }

    #[test]
    fn taint_reaches_sink_through_forwarding_wrapper() {
        let findings = run_on(
            "use smartfeat_frame::csv::write_csv;\n\
             fn emit(text: &str) { write_csv(text) }\n\
             pub fn dump() {\nlet path = std::env::var(\"OUT\").unwrap_or_default();\n\
             emit(&path);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
        assert!(
            findings[0].message.contains("emit"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn thread_count_into_parallel_entry_is_blessed() {
        let findings = run_on(
            "use smartfeat_par::{par_map, resolve_threads};\n\
             use smartfeat_frame::csv::write_csv;\n\
             pub fn pipeline(rows: usize) {\nlet threads = resolve_threads(0);\n\
             let out = par_map(threads, rows, |i| i);\nwrite_csv(\"data\");\n}",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn thread_count_passed_directly_to_sink_is_flagged() {
        let findings = run_on(
            "use smartfeat_par::resolve_threads;\nuse smartfeat_frame::csv::write_csv;\n\
             pub fn dump() {\nlet threads = resolve_threads(0);\n\
             let line = fmt(threads);\nwrite_csv(&line);\n}\n\
             fn fmt(n: usize) -> String { n.to_string() }",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
        assert!(findings[0].message.contains("thread-count"));
    }

    #[test]
    fn hash_iteration_order_is_a_source() {
        let findings = run_on(
            "use std::collections::HashMap;\nuse smartfeat_frame::csv::write_csv;\n\
             pub fn dump(m: usize) {\nlet table: HashMap<String, u64> = HashMap::new();\n\
             let mut rows = String::new();\nlet joined = join(table.iter());\n\
             write_csv(&joined);\n}\nfn join(it: String) -> String { it }",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
        assert!(findings[0].message.contains("hash-iteration"));
    }

    #[test]
    fn if_let_binds_carry_scrutinee_taint() {
        let findings = run_on(
            "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
             if let Ok(path) = std::env::var(\"OUT\") {\nwrite_csv(&path);\n}\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
    }

    #[test]
    fn volatile_field_outside_volatile_section_fires() {
        // The fixture obs report touches `v.ns` only in the blessed pair
        // statement; move it elsewhere via a custom obs crate.
        let manifests = vec![manifest("crates/obs/Cargo.toml", "smartfeat-obs")];
        let parsed = vec![file(
            "crates/obs/src/lib.rs",
            "pub struct WorkStat {\n// sfcheck:volatile-field(ns)\npub ns: u64,\n}\n\
             pub struct Rec;\nimpl Rec {\n\
             // sfcheck:metrics-report\n\
             pub fn report(&self, v: WorkStat) -> u64 {\nlet leak = v.ns;\nleak\n}\n}",
        )];
        let ws = crate::resolve::build(parsed, &manifests);
        let findings = run_all(&ws);
        assert_eq!(lints_of(&findings), ["obs-volatile-discipline"]);
        assert!(findings[0].message.contains("`ns`"));
    }

    #[test]
    fn volatile_field_inside_volatile_statement_is_clean() {
        let findings = run_on("pub fn nothing() {}");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn taint_flows_through_macro_arguments() {
        let findings = run_on(
            "use smartfeat_par::resolve_threads;\nuse smartfeat_frame::csv::write_csv;\n\
             pub fn dump() {\nlet threads = resolve_threads(0);\n\
             let line = format!(\"{}\", threads);\nwrite_csv(&line);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
        assert!(findings[0].message.contains("thread-count"));
    }

    #[test]
    fn taint_flows_through_format_interpolation() {
        let findings = run_on(
            "use smartfeat_par::resolve_threads;\nuse smartfeat_frame::csv::write_csv;\n\
             pub fn dump() {\nlet threads = resolve_threads(0);\n\
             let line = format!(\"threads={threads:>4}\");\nwrite_csv(&line);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
    }

    #[test]
    fn interpolating_helper_forwards_param_taint() {
        // `fmt` returns a param-derived value only via `format!("{n}")`;
        // the summary must still mark param_to_ret so the sink call sees
        // the thread count.
        let findings = run_on(
            "use smartfeat_par::resolve_threads;\nuse smartfeat_frame::csv::write_csv;\n\
             fn fmt(n: usize) -> String { format!(\"{n}\") }\n\
             pub fn dump() {\nlet threads = resolve_threads(0);\n\
             let line = fmt(threads);\nwrite_csv(&line);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
    }

    #[test]
    fn rebinding_does_not_launder_param_to_return_taint() {
        // `fmt` copies its param into a local before formatting: the
        // macro argument is a binding, not the param itself. The summary
        // must still mark param_to_ret so `fmt(threads)` stays tainted.
        let findings = run_on(
            "use smartfeat_par::resolve_threads;\nuse smartfeat_frame::csv::write_csv;\n\
             fn fmt(n: usize) -> String { let s = n; format!(\"{}\", s) }\n\
             pub fn dump() {\nlet threads = resolve_threads(0);\n\
             let line = fmt(threads);\nwrite_csv(&line);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
        assert!(findings[0].message.contains("thread-count"));
    }

    #[test]
    fn rebinding_does_not_launder_param_to_sink_taint() {
        // `emit` formats its param into a local before the sink call:
        // the sink fixpoint must see `&line` as param-derived and mark
        // `emit` sink-reaching, so the caller's `emit(threads)` fires.
        let findings = run_on(
            "use smartfeat_par::resolve_threads;\nuse smartfeat_frame::csv::write_csv;\n\
             fn emit(n: usize) { let line = format!(\"{}\", n); write_csv(&line); }\n\
             pub fn dump() {\nlet threads = resolve_threads(0);\nemit(threads);\n}",
        );
        assert_eq!(lints_of(&findings), ["determinism-taint"]);
        assert!(findings[0].message.contains("emit"));
    }

    #[test]
    fn untainted_macro_and_escaped_braces_stay_clean() {
        let findings = run_on(
            "use smartfeat_frame::csv::write_csv;\npub fn dump(rows: usize) {\n\
             let line = format!(\"rows={rows} {{threads}}\");\nwrite_csv(&line);\n}",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn interpolated_idents_parses_format_braces() {
        let mut names = Vec::new();
        interpolated_idents(
            "\"a={alpha} b={beta:>8} c={} d={0} e={{gamma}} f={x.y}\"",
            &mut names,
        );
        assert_eq!(names, ["alpha", "beta"]);
    }
}
