//! # smartfeat-frame
//!
//! A small, typed, columnar in-memory DataFrame used as the execution
//! substrate for the SMARTFEAT reproduction. It plays the role pandas plays
//! in the original paper: the transformation functions emitted by the
//! function generator (bucketize, normalize, arithmetic, group-by-transform,
//! dummies, date splitting, …) all execute against [`DataFrame`].
//!
//! Design notes:
//! - Columns are typed (`Int`, `Float`, `Str`, `Bool`) with per-cell nulls,
//!   mirroring pandas' nullable semantics after `dropna`/`factorize`.
//! - Storage is columnar v2: dense value buffers + [`bitmap::NullBitmap`]
//!   validity, dictionary-encoded categoricals ([`dict::Dictionary`]), and
//!   zero-copy read-views ([`view::NumericView`] / [`view::KeysView`]) for
//!   the transform hot paths.
//! - Every operation is deterministic; anything stochastic (shuffles,
//!   splits) takes an explicit seed. Hash-based lookups use the fixed-seed
//!   first-occurrence-ordered [`index::StableMap`], never `std::HashMap`.
//! - The workspace builds hermetically: no registry dependencies. Seeded
//!   sampling comes from the in-repo `smartfeat-rng` crate, and schema
//!   serialization for data cards uses the hand-rolled [`json`] module.

pub mod bitmap;
pub mod column;
pub mod csv;
pub mod dict;
pub mod dtype;
pub mod error;
pub mod frame;
pub mod index;
pub mod json;
pub mod ops;
pub mod sample;
pub mod stats;
pub mod value;
pub mod view;

pub use bitmap::NullBitmap;
pub use column::{Column, ColumnData};
pub use dict::Dictionary;
pub use dtype::DType;
pub use error::{FrameError, Result};
pub use frame::DataFrame;
pub use index::{StableHash, StableHasher, StableMap, StableSet};
pub use value::Value;
pub use view::{KeysView, NumericView};
