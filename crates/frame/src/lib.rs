//! # smartfeat-frame
//!
//! A small, typed, columnar in-memory DataFrame used as the execution
//! substrate for the SMARTFEAT reproduction. It plays the role pandas plays
//! in the original paper: the transformation functions emitted by the
//! function generator (bucketize, normalize, arithmetic, group-by-transform,
//! dummies, date splitting, …) all execute against [`DataFrame`].
//!
//! Design notes:
//! - Columns are typed (`Int`, `Float`, `Str`, `Bool`) with per-cell nulls,
//!   mirroring pandas' nullable semantics after `dropna`/`factorize`.
//! - Every operation is deterministic; anything stochastic (shuffles,
//!   splits) takes an explicit seed.
//! - The workspace builds hermetically: no registry dependencies. Seeded
//!   sampling comes from the in-repo `smartfeat-rng` crate, and schema
//!   serialization for data cards uses the hand-rolled [`json`] module.

pub mod column;
pub mod csv;
pub mod dtype;
pub mod error;
pub mod frame;
pub mod json;
pub mod ops;
pub mod sample;
pub mod stats;
pub mod value;

pub use column::{Column, ColumnData};
pub use dtype::DType;
pub use error::{FrameError, Result};
pub use frame::DataFrame;
pub use value::Value;
