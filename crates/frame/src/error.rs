//! Error type shared across the frame crate.

use std::fmt;

/// Errors produced by DataFrame operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A referenced column does not exist.
    ColumnNotFound(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// A column being added does not match the frame's row count.
    LengthMismatch {
        /// Column whose length is wrong.
        column: String,
        /// Length the frame expects.
        expected: usize,
        /// Length the column actually has.
        actual: usize,
    },
    /// The operation required a numeric column but got something else.
    TypeMismatch {
        /// Column with the offending type.
        column: String,
        /// Human-readable description of what was expected.
        expected: &'static str,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the frame.
        len: usize,
    },
    /// CSV parsing failed.
    Csv(String),
    /// An operation received invalid parameters (e.g. empty bucket list).
    InvalidArgument(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            FrameError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column {column:?} has {actual} rows but the frame has {expected}"
            ),
            FrameError::TypeMismatch { column, expected } => {
                write!(f, "column {column:?} is not {expected}")
            }
            FrameError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for frame of {len} rows")
            }
            FrameError::Csv(msg) => write!(f, "csv error: {msg}"),
            FrameError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FrameError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = FrameError::ColumnNotFound("age".into());
        assert_eq!(e.to_string(), "column not found: \"age\"");
    }

    #[test]
    fn display_length_mismatch() {
        let e = FrameError::LengthMismatch {
            column: "x".into(),
            expected: 3,
            actual: 5,
        };
        assert!(e.to_string().contains("5 rows"));
        assert!(e.to_string().contains("has 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FrameError::Csv("bad".into()));
    }
}
