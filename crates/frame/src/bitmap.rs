//! Validity bitmaps: one bit per row, 1 = present, 0 = null.
//!
//! The v2 columnar layout stores values and nullness separately — a dense
//! value buffer (`Vec<i64>` / `Vec<f64>` / …) plus a [`NullBitmap`] — the
//! way Arrow does, instead of the v1 `Vec<Option<T>>` layout. This halves
//! (or better) the memory footprint of numeric columns, makes
//! `null_count` a popcount instead of a scan, and lets the pure-transform
//! hot loops read values without branching on an `Option` discriminant.
//!
//! Invariant: bits at positions `>= len` in the last word are always zero,
//! so whole-word operations (popcount, equality) need no masking.

/// A bit-packed validity mask. Bit `i` set ⇔ row `i` holds a value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        NullBitmap::default()
    }

    /// A bitmap of `len` rows, all valid.
    pub fn all_valid(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        NullBitmap { words, len }
    }

    /// A bitmap of `len` rows, all null.
    pub fn all_null(len: usize) -> Self {
        NullBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from an iterator of validity flags.
    pub fn from_flags(flags: impl IntoIterator<Item = bool>) -> Self {
        let flags = flags.into_iter();
        let mut b = BitmapBuilder::with_capacity(flags.size_hint().0);
        flags.for_each(|f| b.push(f));
        b.finish()
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one row's validity.
    pub fn push(&mut self, valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if bit == 0 {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// True if row `i` holds a value. Panics if `i >= len` (mirrors slice
    /// indexing, which the v1 layout used).
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Mark row `i` valid or null.
    pub fn set(&mut self, i: usize, valid: bool) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if valid {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Count of valid rows — a popcount over the packed words.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Count of null rows.
    pub fn count_null(&self) -> usize {
        self.len - self.count_valid()
    }

    /// True if every row is valid.
    pub fn all_are_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// Gather a subset of rows into a new bitmap (`Column::take`).
    pub fn take(&self, indices: &[usize]) -> NullBitmap {
        NullBitmap::from_flags(indices.iter().map(|&i| self.is_valid(i)))
    }

    /// Visit the index of every null row, in order. Walks the packed
    /// words and only materializes set bits of the inverse, so an
    /// all-valid bitmap costs one wordwise scan and no per-row work —
    /// this is what lets transforms re-zero null slots after a packed
    /// whole-buffer map.
    pub fn for_each_null(&self, mut f: impl FnMut(usize)) {
        for (wi, &w) in self.words.iter().enumerate() {
            let mut inv = !w;
            while inv != 0 {
                let i = wi * 64 + inv.trailing_zeros() as usize;
                if i >= self.len {
                    break;
                }
                f(i);
                inv &= inv - 1;
            }
        }
    }

    /// Iterate validity flags in row order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            idx: 0,
            len: self.len,
        }
    }
}

/// Word-buffered bitmap construction: bits accumulate in a register-held
/// word that flushes every 64 rows, so the per-row cost is a shift-or —
/// no per-row `Vec` branch or bounds-checked `|=` like repeated
/// [`NullBitmap::push`]. This is what the streaming column constructors
/// (`Column::from_float_iter` / `from_int_iter`) use on the transform
/// hot path.
#[derive(Debug, Default)]
pub struct BitmapBuilder {
    words: Vec<u64>,
    cur: u64,
    bit: u32,
}

impl BitmapBuilder {
    /// A builder pre-sized for `rows` rows.
    pub fn with_capacity(rows: usize) -> Self {
        BitmapBuilder {
            words: Vec::with_capacity(rows.div_ceil(64)),
            cur: 0,
            bit: 0,
        }
    }

    /// Append one row's validity.
    #[inline]
    pub fn push(&mut self, valid: bool) {
        self.cur |= (valid as u64) << self.bit;
        self.bit += 1;
        if self.bit == 64 {
            self.words.push(self.cur);
            self.cur = 0;
            self.bit = 0;
        }
    }

    /// Finalize into a [`NullBitmap`]. The partial tail word carries only
    /// bits below `self.bit`, so the zeroed-tail invariant holds for free.
    pub fn finish(mut self) -> NullBitmap {
        let len = self.words.len() * 64 + self.bit as usize;
        if self.bit > 0 {
            self.words.push(self.cur);
        }
        NullBitmap {
            words: self.words,
            len,
        }
    }
}

/// Validity iterator over the packed words. `next` is a shift-and-mask
/// read with no per-row division; [`BitIter::raw_parts`] lets the view
/// iterators fold over the raw words for fully monomorphic hot loops.
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    idx: usize,
    len: usize,
}

impl<'a> BitIter<'a> {
    /// The backing words, the next row index, and the total row count.
    pub(crate) fn raw_parts(&self) -> (&'a [u64], usize, usize) {
        (self.words, self.idx, self.len)
    }
}

impl Iterator for BitIter<'_> {
    type Item = bool;

    #[inline]
    fn next(&mut self) -> Option<bool> {
        if self.idx >= self.len {
            return None;
        }
        let bit = self.words[self.idx >> 6] & (1u64 << (self.idx & 63)) != 0;
        self.idx += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.len - self.idx;
        (remaining, Some(remaining))
    }

    #[inline]
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, bool) -> B,
    {
        let mut acc = init;
        for idx in self.idx..self.len {
            acc = f(acc, self.words[idx >> 6] & (1u64 << (idx & 63)) != 0);
        }
        acc
    }
}

impl ExactSizeIterator for BitIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_and_all_null() {
        let v = NullBitmap::all_valid(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_valid(), 70);
        assert!(v.is_valid(69));
        let n = NullBitmap::all_null(70);
        assert_eq!(n.count_valid(), 0);
        assert!(!n.is_valid(0));
    }

    #[test]
    fn push_and_set_roundtrip() {
        let mut bm = NullBitmap::new();
        for i in 0..130 {
            bm.push(i % 3 != 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.is_valid(i), i % 3 != 0, "row {i}");
        }
        bm.set(0, true);
        bm.set(1, false);
        assert!(bm.is_valid(0));
        assert!(!bm.is_valid(1));
    }

    #[test]
    fn counts_agree_with_iteration() {
        let bm = NullBitmap::from_flags((0..200).map(|i| i % 7 == 0));
        let by_iter = bm.iter().filter(|&v| v).count();
        assert_eq!(bm.count_valid(), by_iter);
        assert_eq!(bm.count_null(), 200 - by_iter);
    }

    #[test]
    fn tail_bits_zeroed_so_equality_is_wordwise() {
        // all_valid(65) vs push-built: same logical content, equal words.
        let a = NullBitmap::all_valid(65);
        let b = NullBitmap::from_flags((0..65).map(|_| true));
        assert_eq!(a, b);
    }

    #[test]
    fn take_gathers() {
        let bm = NullBitmap::from_flags([true, false, true, true]);
        let t = bm.take(&[3, 1, 0]);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        NullBitmap::all_valid(3).is_valid(3);
    }
}
