//! Minimal CSV reader/writer with RFC-4180 quoting and type inference.
//!
//! Enough for the examples to load user datasets and for the harness to
//! dump generated feature matrices; not a general-purpose CSV library.

use std::collections::BTreeMap;

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
#[cfg(test)]
use crate::value::Value;

/// Parse CSV text (first row = header) into a frame, inferring column types.
///
/// Inference: a column becomes `Int` if every non-empty cell parses as i64,
/// else `Float` if every non-empty cell parses as f64, else `Bool` if every
/// cell is `true`/`false`, else `Str`. Empty cells are nulls.
pub fn read_csv_str(text: &str) -> Result<DataFrame> {
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Err(FrameError::Csv("empty input".into()));
    }
    let header = rows.remove(0);
    let n_cols = header.len();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != n_cols {
            return Err(FrameError::Csv(format!(
                "row {} has {} fields, expected {n_cols}",
                i + 2,
                row.len()
            )));
        }
    }
    let mut df = DataFrame::new();
    for (c, name) in header.into_iter().enumerate() {
        let cells: Vec<&str> = rows.iter().map(|r| r[c].as_str()).collect();
        df.add_column(infer_column(&name, &cells))?;
    }
    Ok(df)
}

fn infer_column(name: &str, cells: &[&str]) -> Column {
    let non_empty: Vec<&str> = cells.iter().copied().filter(|s| !s.is_empty()).collect();
    let all_int = !non_empty.is_empty() && non_empty.iter().all(|s| s.parse::<i64>().is_ok());
    if all_int {
        return Column::from_ints(name, cells.iter().map(|s| s.parse::<i64>().ok()).collect());
    }
    let all_float = !non_empty.is_empty() && non_empty.iter().all(|s| s.parse::<f64>().is_ok());
    if all_float {
        return Column::from_floats(name, cells.iter().map(|s| s.parse::<f64>().ok()).collect());
    }
    let all_bool = !non_empty.is_empty()
        && non_empty
            .iter()
            .all(|s| matches!(*s, "true" | "false" | "True" | "False"));
    if all_bool {
        return Column::from_bools(
            name,
            cells
                .iter()
                .map(|s| match *s {
                    "true" | "True" => Some(true),
                    "false" | "False" => Some(false),
                    _ => None,
                })
                .collect(),
        );
    }
    Column::from_strs(
        name,
        cells
            .iter()
            .map(|s| (!s.is_empty()).then(|| s.to_string()))
            .collect(),
    )
}

/// Split CSV text into rows of unquoted fields, honoring RFC-4180 quotes.
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Serialize a frame to CSV text (header + rows), quoting as needed.
pub fn write_csv_str(df: &DataFrame) -> String {
    let mut out = String::new();
    let names = df.column_names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for i in 0..df.n_rows() {
        let cells: Vec<String> = df
            .columns()
            .iter()
            .map(|c| quote(&c.get(i).render()))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Read a frame from a CSV file on disk.
pub fn read_csv_path(path: &std::path::Path) -> Result<DataFrame> {
    let text =
        std::fs::read_to_string(path).map_err(|e| FrameError::Csv(format!("{path:?}: {e}")))?;
    read_csv_str(&text)
}

/// Write a frame to a CSV file on disk.
pub fn write_csv_path(df: &DataFrame, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, write_csv_str(df)).map_err(|e| FrameError::Csv(format!("{path:?}: {e}")))
}

/// Round-trip helper used by tests: frame → CSV → frame, comparing shapes
/// and rendered cells (types may legitimately widen, e.g. Bool → Str never
/// happens but Int → Float can when floats appear).
pub fn roundtrip_equal(df: &DataFrame) -> bool {
    match read_csv_str(&write_csv_str(df)) {
        Ok(back) => {
            if back.n_rows() != df.n_rows() || back.n_cols() != df.n_cols() {
                return false;
            }
            for i in 0..df.n_rows() {
                let a: Vec<String> = df.columns().iter().map(|c| c.get(i).render()).collect();
                let b: Vec<String> = back.columns().iter().map(|c| c.get(i).render()).collect();
                if a != b {
                    return false;
                }
            }
            true
        }
        Err(_) => false,
    }
}

/// Parse a `name=value,name=value` description of renames (tiny helper for
/// the examples' CLI surface).
pub fn parse_rename_spec(spec: &str) -> BTreeMap<String, String> {
    spec.split(',')
        .filter_map(|pair| {
            let (a, b) = pair.split_once('=')?;
            Some((a.trim().to_string(), b.trim().to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    #[test]
    fn read_infers_types() {
        let df = read_csv_str("a,b,c,d\n1,2.5,x,true\n3,,y,false\n").unwrap();
        assert_eq!(df.column("a").unwrap().dtype(), DType::Int);
        assert_eq!(df.column("b").unwrap().dtype(), DType::Float);
        assert_eq!(df.column("c").unwrap().dtype(), DType::Str);
        assert_eq!(df.column("d").unwrap().dtype(), DType::Bool);
        assert!(df.column("b").unwrap().is_null(1));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let df = read_csv_str("name,desc\nalice,\"hello, \"\"world\"\"\"\n").unwrap();
        assert_eq!(
            df.column("desc").unwrap().get(0),
            Value::Str("hello, \"world\"".into())
        );
    }

    #[test]
    fn crlf_tolerated() {
        let df = read_csv_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.n_cols(), 2);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(read_csv_str("a,b\n1\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv_str("a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv_str("").is_err());
    }

    #[test]
    fn write_then_read_roundtrips() {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("id", vec![1, 2]),
            Column::from_str_slice("txt", &["plain", "with,comma"]),
            Column::from_floats("v", vec![Some(1.5), None]),
        ])
        .unwrap();
        assert!(roundtrip_equal(&df));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let df = read_csv_str("a\n1\n2").unwrap();
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn rename_spec_parser() {
        let m = parse_rename_spec("a=x, b=y");
        assert_eq!(m["a"], "x");
        assert_eq!(m["b"], "y");
    }

    #[test]
    fn all_empty_column_is_str_nulls() {
        let df = read_csv_str("a,b\n1,\n2,\n").unwrap();
        // Column b has no non-empty cells ⇒ falls through to Str of nulls.
        assert_eq!(df.column("b").unwrap().null_count(), 2);
    }
}
