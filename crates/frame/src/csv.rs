//! Minimal CSV reader/writer with RFC-4180 quoting and type inference.
//!
//! Enough for the examples to load user datasets and for the harness to
//! dump generated feature matrices; not a general-purpose CSV library.

use std::collections::BTreeMap;

use crate::column::Column;
use crate::dtype::DType;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use crate::value::Value;

/// One lexed CSV field: its unescaped text plus whether any part of it was
/// quoted in the source. Quoting is the writer's dtype fidelity signal, so
/// the reader must carry it through to inference.
struct RawField {
    text: String,
    quoted: bool,
}

/// Parse CSV text (first row = header) into a frame, inferring column types.
///
/// Inference: a column becomes `Int` if every non-empty cell parses as i64,
/// else `Float` if every non-empty cell parses as f64, else `Bool` if every
/// cell is `true`/`false`, else `Str`. Empty cells are nulls. Quoted fields
/// are inference-exempt: a column containing any quoted cell is `Str`, so a
/// string column of numeric-looking values survives a round-trip.
pub fn read_csv_str(text: &str) -> Result<DataFrame> {
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Err(FrameError::Csv("empty input".into()));
    }
    let header = rows.remove(0);
    let n_cols = header.len();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != n_cols {
            return Err(FrameError::Csv(format!(
                "row {} has {} fields, expected {n_cols}",
                i + 2,
                row.len()
            )));
        }
    }
    let mut df = DataFrame::new();
    for (c, name) in header.into_iter().enumerate() {
        let cells: Vec<&RawField> = rows.iter().map(|r| &r[c]).collect();
        df.add_column(infer_column(&name.text, &cells))?;
    }
    Ok(df)
}

fn infer_column(name: &str, cells: &[&RawField]) -> Column {
    // Any quoted cell pins the column to Str: the writer quotes string
    // cells precisely so numeric-looking text is not re-inferred. A quoted
    // empty field is an empty string, not a null.
    if cells.iter().any(|f| f.quoted) {
        return Column::from_strs(
            name,
            cells
                .iter()
                .map(|f| (f.quoted || !f.text.is_empty()).then(|| f.text.clone()))
                .collect(),
        );
    }
    let non_empty: Vec<&str> = cells
        .iter()
        .map(|f| f.text.as_str())
        .filter(|s| !s.is_empty())
        .collect();
    let all_int = !non_empty.is_empty() && non_empty.iter().all(|s| s.parse::<i64>().is_ok());
    if all_int {
        return Column::from_ints(
            name,
            cells.iter().map(|f| f.text.parse::<i64>().ok()).collect(),
        );
    }
    let all_float = !non_empty.is_empty() && non_empty.iter().all(|s| s.parse::<f64>().is_ok());
    if all_float {
        return Column::from_floats(
            name,
            cells.iter().map(|f| f.text.parse::<f64>().ok()).collect(),
        );
    }
    let all_bool = !non_empty.is_empty()
        && non_empty
            .iter()
            .all(|s| matches!(*s, "true" | "false" | "True" | "False"));
    if all_bool {
        return Column::from_bools(
            name,
            cells
                .iter()
                .map(|f| match f.text.as_str() {
                    "true" | "True" => Some(true),
                    "false" | "False" => Some(false),
                    _ => None,
                })
                .collect(),
        );
    }
    Column::from_strs(
        name,
        cells
            .iter()
            .map(|f| (!f.text.is_empty()).then(|| f.text.clone()))
            .collect(),
    )
}

/// Split CSV text into rows of unescaped fields, honoring RFC-4180 quotes
/// and remembering which fields were quoted.
fn parse_rows(text: &str) -> Result<Vec<Vec<RawField>>> {
    let mut rows = Vec::new();
    let mut row: Vec<RawField> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    let take_field = |field: &mut String, quoted: &mut bool| RawField {
        text: std::mem::take(field),
        quoted: std::mem::take(quoted),
    };
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quoted = true;
                }
                ',' => {
                    row.push(take_field(&mut field, &mut quoted));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    row.push(take_field(&mut field, &mut quoted));
                    rows.push(std::mem::take(&mut row));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || quoted || !row.is_empty()) {
        row.push(take_field(&mut field, &mut quoted));
        rows.push(row);
    }
    Ok(rows)
}

/// Serialize a frame to CSV text (header + rows). Non-null cells of `Str`
/// columns are always quoted so the reader keeps them as strings even when
/// they look numeric; other cells are quoted only when RFC-4180 requires it.
/// Null cells are written as unquoted empties in every dtype, so they read
/// back as nulls.
// sfcheck:output-sink
pub fn write_csv_str(df: &DataFrame) -> String {
    let mut out = String::new();
    let names = df.column_names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for i in 0..df.n_rows() {
        let cells: Vec<String> = df
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(i);
                if c.dtype() == DType::Str && !matches!(v, Value::Null) {
                    force_quote(&v.render())
                } else {
                    quote(&v.render())
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        force_quote(s)
    } else {
        s.to_string()
    }
}

fn force_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

/// Read a frame from a CSV file on disk.
pub fn read_csv_path(path: &std::path::Path) -> Result<DataFrame> {
    let text =
        std::fs::read_to_string(path).map_err(|e| FrameError::Csv(format!("{path:?}: {e}")))?;
    read_csv_str(&text)
}

/// Write a frame to a CSV file on disk.
// sfcheck:output-sink
pub fn write_csv_path(df: &DataFrame, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, write_csv_str(df)).map_err(|e| FrameError::Csv(format!("{path:?}: {e}")))
}

/// Round-trip helper used by tests: frame → CSV → frame, comparing shapes,
/// column names, dtypes, and rendered cells. Since the writer quotes string
/// cells and the reader exempts quoted fields from inference, a round trip
/// must preserve every column's dtype exactly.
pub fn roundtrip_equal(df: &DataFrame) -> bool {
    match read_csv_str(&write_csv_str(df)) {
        Ok(back) => {
            if back.n_rows() != df.n_rows() || back.n_cols() != df.n_cols() {
                return false;
            }
            for (a, b) in df.columns().iter().zip(back.columns()) {
                if a.name() != b.name() || a.dtype() != b.dtype() {
                    return false;
                }
            }
            for i in 0..df.n_rows() {
                let a: Vec<String> = df.columns().iter().map(|c| c.get(i).render()).collect();
                let b: Vec<String> = back.columns().iter().map(|c| c.get(i).render()).collect();
                if a != b {
                    return false;
                }
            }
            true
        }
        Err(_) => false,
    }
}

/// Parse a `name=value,name=value` description of renames (tiny helper for
/// the examples' CLI surface).
pub fn parse_rename_spec(spec: &str) -> BTreeMap<String, String> {
    spec.split(',')
        .filter_map(|pair| {
            let (a, b) = pair.split_once('=')?;
            Some((a.trim().to_string(), b.trim().to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    #[test]
    fn read_infers_types() {
        let df = read_csv_str("a,b,c,d\n1,2.5,x,true\n3,,y,false\n").unwrap();
        assert_eq!(df.column("a").unwrap().dtype(), DType::Int);
        assert_eq!(df.column("b").unwrap().dtype(), DType::Float);
        assert_eq!(df.column("c").unwrap().dtype(), DType::Str);
        assert_eq!(df.column("d").unwrap().dtype(), DType::Bool);
        assert!(df.column("b").unwrap().is_null(1));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let df = read_csv_str("name,desc\nalice,\"hello, \"\"world\"\"\"\n").unwrap();
        assert_eq!(
            df.column("desc").unwrap().get(0),
            Value::Str("hello, \"world\"".into())
        );
    }

    #[test]
    fn crlf_tolerated() {
        let df = read_csv_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.n_cols(), 2);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(read_csv_str("a,b\n1\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv_str("a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv_str("").is_err());
    }

    #[test]
    fn write_then_read_roundtrips() {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("id", vec![1, 2]),
            Column::from_str_slice("txt", &["plain", "with,comma"]),
            Column::from_floats("v", vec![Some(1.5), None]),
        ])
        .unwrap();
        assert!(roundtrip_equal(&df));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let df = read_csv_str("a\n1\n2").unwrap();
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn rename_spec_parser() {
        let m = parse_rename_spec("a=x, b=y");
        assert_eq!(m["a"], "x");
        assert_eq!(m["b"], "y");
    }

    #[test]
    fn all_empty_column_is_str_nulls() {
        let df = read_csv_str("a,b\n1,\n2,\n").unwrap();
        // Column b has no non-empty cells ⇒ falls through to Str of nulls.
        assert_eq!(df.column("b").unwrap().null_count(), 2);
    }

    #[test]
    fn str_column_of_numeric_text_keeps_dtype() {
        // Zip-code shape: numeric-looking strings must survive a round
        // trip as Str, not come back as Int.
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("zip", &["02139", "94107"]),
            Column::from_i64("n", vec![1, 2]),
        ])
        .unwrap();
        let text = write_csv_str(&df);
        let back = read_csv_str(&text).unwrap();
        assert_eq!(back.column("zip").unwrap().dtype(), DType::Str);
        assert_eq!(
            back.column("zip").unwrap().get(0),
            Value::Str("02139".into())
        );
        assert_eq!(back.column("n").unwrap().dtype(), DType::Int);
        assert!(roundtrip_equal(&df));
    }

    #[test]
    fn quoted_numeric_field_is_inference_exempt() {
        let df = read_csv_str("a,b\n\"1\",1\n\"2\",2\n").unwrap();
        assert_eq!(df.column("a").unwrap().dtype(), DType::Str);
        assert_eq!(df.column("b").unwrap().dtype(), DType::Int);
    }

    #[test]
    fn str_nulls_and_empty_strings_roundtrip_distinctly() {
        // A null Str cell writes as an unquoted empty; an empty-string
        // cell writes as a quoted empty. Both must read back unchanged.
        let df = DataFrame::from_columns(vec![Column::from_strs(
            "s",
            vec![Some("x".into()), None, Some(String::new())],
        )])
        .unwrap();
        let text = write_csv_str(&df);
        let back = read_csv_str(&text).unwrap();
        let col = back.column("s").unwrap();
        assert_eq!(col.dtype(), DType::Str);
        assert!(col.is_null(1));
        assert_eq!(col.get(2), Value::Str(String::new()));
        assert_eq!(col.null_count(), 1);
    }

    #[test]
    fn roundtrip_equal_detects_dtype_drift() {
        // Sanity-check the helper itself: hand-built CSV without quotes
        // collapses numeric-looking strings to Int (and drops the leading
        // zero), exactly the drift the quoting contract prevents.
        let df = DataFrame::from_columns(vec![Column::from_str_slice("zip", &["02139"])]).unwrap();
        let lossy = read_csv_str("zip\n02139\n").unwrap();
        assert_eq!(lossy.column("zip").unwrap().dtype(), DType::Int);
        assert_eq!(lossy.column("zip").unwrap().get(0), Value::Int(2139));
        assert!(roundtrip_equal(&df));
    }

    #[test]
    fn bool_and_float_dtypes_roundtrip() {
        let df = DataFrame::from_columns(vec![
            Column::from_bools("b", vec![Some(true), None, Some(false)]),
            Column::from_floats("f", vec![Some(1.0), Some(2.5), None]),
        ])
        .unwrap();
        assert!(roundtrip_equal(&df));
    }
}
