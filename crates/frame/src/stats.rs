//! Column statistics: moments, correlation, entropy, mutual information.
//!
//! Used by the feature-evaluation step (correlation pruning), the baselines
//! (Featuretools-style selection), and Table 6's information-gain metric.

use crate::column::Column;

/// Summary statistics over the non-null cells of a numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Count of non-null cells.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize the non-null cells of a numeric slice. Returns `None` if no
/// values are present.
pub fn summarize(values: &[Option<f64>]) -> Option<Summary> {
    let xs: Vec<f64> = values.iter().flatten().copied().collect();
    if xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    Some(Summary {
        count: xs.len(),
        mean,
        std: var.sqrt(),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    })
}

/// Pearson correlation over rows where both columns are non-null.
/// Returns `None` when fewer than two complete pairs exist or either side
/// has zero variance.
pub fn pearson(a: &[Option<f64>], b: &[Option<f64>]) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = a
        .iter()
        .zip(b)
        .filter_map(|(x, y)| Some(((*x)?, (*y)?)))
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in &pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Pearson correlation between two columns' numeric views.
pub fn column_pearson(a: &Column, b: &Column) -> Option<f64> {
    pearson(&a.to_f64(), &b.to_f64())
}

/// Shannon entropy (nats) of a discrete distribution given by counts.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// Equal-width discretization of a numeric slice into `bins` buckets over
/// the observed range. Nulls map to `None`; constant columns map to bin 0.
pub fn discretize(values: &[Option<f64>], bins: usize) -> Vec<Option<usize>> {
    let bins = bins.max(1);
    let summary = match summarize(values) {
        Some(s) => s,
        None => return vec![None; values.len()],
    };
    let range = summary.max - summary.min;
    values
        .iter()
        .map(|v| {
            v.map(|x| {
                if range == 0.0 {
                    0
                } else {
                    (((x - summary.min) / range * bins as f64) as usize).min(bins - 1)
                }
            })
        })
        .collect()
}

/// Mutual information (nats) between a discretized feature and binary
/// labels, computed over rows where the feature is non-null.
///
/// This is the reproduction of sklearn's `mutual_info_classif` as used for
/// Table 6's IG metric (a histogram estimator rather than k-NN: monotone in
/// the same orderings for the planted workloads, and deterministic).
pub fn mutual_information(values: &[Option<f64>], labels: &[u8], bins: usize) -> f64 {
    debug_assert_eq!(values.len(), labels.len());
    let discrete = discretize(values, bins);
    let bins = bins.max(1);
    let mut joint = vec![[0usize; 2]; bins];
    let mut total = 0usize;
    for (d, &y) in discrete.iter().zip(labels) {
        if let Some(b) = d {
            joint[*b][(y != 0) as usize] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut mi = 0.0;
    let class_counts = [
        joint.iter().map(|j| j[0]).sum::<usize>(),
        joint.iter().map(|j| j[1]).sum::<usize>(),
    ];
    for row in &joint {
        let row_total = row[0] + row[1];
        if row_total == 0 {
            continue;
        }
        for (cls, &cnt) in row.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let pxy = cnt as f64 / total_f;
            let px = row_total as f64 / total_f;
            let py = class_counts[cls] as f64 / total_f;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[Some(1.0), Some(2.0), Some(3.0), None]).unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(&[None, None]).is_none());
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let a = vec![Some(1.0), Some(2.0), Some(3.0)];
        let b = vec![Some(2.0), Some(4.0), Some(6.0)];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = vec![Some(3.0), Some(2.0), Some(1.0)];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_none() {
        let a = vec![Some(1.0), Some(1.0), Some(1.0)];
        let b = vec![Some(1.0), Some(2.0), Some(3.0)];
        assert!(pearson(&a, &b).is_none());
    }

    #[test]
    fn pearson_skips_null_pairs() {
        let a = vec![Some(1.0), None, Some(3.0), Some(5.0)];
        let b = vec![Some(1.0), Some(99.0), Some(3.0), Some(5.0)];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_vs_point() {
        assert!(entropy(&[5, 5]) > entropy(&[9, 1]));
        assert_eq!(entropy(&[10, 0]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
        assert!((entropy(&[1, 1]) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn discretize_covers_range() {
        let vals = vec![Some(0.0), Some(5.0), Some(10.0), None];
        let d = discretize(&vals, 2);
        assert_eq!(d, vec![Some(0), Some(1), Some(1), None]);
    }

    #[test]
    fn discretize_constant() {
        let vals = vec![Some(7.0), Some(7.0)];
        assert_eq!(discretize(&vals, 4), vec![Some(0), Some(0)]);
    }

    #[test]
    fn mutual_information_detects_perfect_predictor() {
        // Feature perfectly separates classes ⇒ MI = H(Y) = ln 2.
        let values: Vec<Option<f64>> = (0..100)
            .map(|i| Some(if i < 50 { 0.0 } else { 1.0 }))
            .collect();
        let labels: Vec<u8> = (0..100).map(|i| u8::from(i >= 50)).collect();
        let mi = mutual_information(&values, &labels, 2);
        assert!((mi - (2.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn mutual_information_independent_is_zero() {
        let values: Vec<Option<f64>> = (0..100).map(|i| Some((i % 2) as f64)).collect();
        let labels: Vec<u8> = (0..100).map(|i| u8::from((i / 2) % 2 == 0)).collect();
        let mi = mutual_information(&values, &labels, 2);
        assert!(mi.abs() < 1e-9);
    }

    #[test]
    fn mutual_information_all_null_is_zero() {
        let values = vec![None, None];
        assert_eq!(mutual_information(&values, &[0, 1], 4), 0.0);
    }
}
