//! Column data types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four storage types a [`crate::Column`] can have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DType {
    /// True for `Int`, `Float`, and `Bool` (bools participate in arithmetic
    /// as 0/1, matching pandas).
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float | DType::Bool)
    }

    /// Short lowercase name used in data cards and reports.
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DType::Int.is_numeric());
        assert!(DType::Float.is_numeric());
        assert!(DType::Bool.is_numeric());
        assert!(!DType::Str.is_numeric());
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::Float.to_string(), "float");
        assert_eq!(DType::Str.to_string(), "str");
    }
}
