//! Column data types.

use std::fmt;

/// The four storage types a [`crate::Column`] can have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DType {
    /// True for `Int`, `Float`, and `Bool` (bools participate in arithmetic
    /// as 0/1, matching pandas).
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float | DType::Bool)
    }

    /// Short lowercase name used in data cards and reports.
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        }
    }

    /// Inverse of [`DType::name`]: parse a data-card / JSON type tag.
    pub fn from_name(name: &str) -> Option<DType> {
        match name {
            "int" => Some(DType::Int),
            "float" => Some(DType::Float),
            "str" => Some(DType::Str),
            "bool" => Some(DType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DType::Int.is_numeric());
        assert!(DType::Float.is_numeric());
        assert!(DType::Bool.is_numeric());
        assert!(!DType::Str.is_numeric());
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::Float.to_string(), "float");
        assert_eq!(DType::Str.to_string(), "str");
    }

    #[test]
    fn from_name_roundtrips() {
        for d in [DType::Int, DType::Float, DType::Str, DType::Bool] {
            assert_eq!(DType::from_name(d.name()), Some(d));
        }
        assert_eq!(DType::from_name("datetime"), None);
    }
}
