//! A small hand-rolled JSON value: parse and emit, no external crates.
//!
//! This replaces `serde`/`serde_json` for the repository's configuration
//! and schema serialization (the hermetic-build policy forbids registry
//! dependencies). It supports the full JSON grammar — objects, arrays,
//! strings with escapes (including `\uXXXX` pairs), numbers, booleans,
//! and null — which is far more than the repo's own emitters produce,
//! so round-trips through foreign JSON also work.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects use a [`BTreeMap`] so emission is deterministic (keys sorted),
/// which keeps serialized configs diff-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (integers round-trip exactly up to
    /// 2^53, far beyond anything the repo serializes except seeds — see
    /// [`JsonValue::as_u64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integral number.
    ///
    /// Numbers are stored as `f64`, so only integers up to 2^53 survive
    /// exactly; larger seeds would lose precision through JSON regardless
    /// of the parser (JavaScript has the same limit).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// This value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Parse a JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser {
            bytes,
            text,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Emit compact JSON (no whitespace, object keys sorted).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(n) => emit_number(*n, out),
            JsonValue::Str(s) => emit_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

/// A parse or decode failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where the parser stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A decode-level error (missing field, wrong type) not tied to a
    /// source position.
    pub fn decode(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

fn emit_number(n: f64, out: &mut String) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
            out.push_str(&format!("{}", n as i64));
        } else {
            // `{:?}` prints the shortest representation that round-trips.
            out.push_str(&format!("{n:?}"));
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json does.
        out.push_str("null");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    /// The same input as a `&str`; `pos` always sits on a char boundary,
    /// so one-char decodes can slice this directly instead of
    /// re-validating the whole tail as UTF-8 per character (which made
    /// string-heavy documents parse in quadratic time).
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte char. The input is a &str
                    // and `pos` is a char boundary, so slicing decodes
                    // exactly one char in O(1).
                    // sfcheck:allow(panic-hygiene) invariant: peek() returned Some, so the tail is non-empty
                    let c = self.text[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(JsonValue::parse("-3.5e2").unwrap(), JsonValue::Num(-350.0));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::Str("hi".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ é 中 🦀 \u{0007}";
        let emitted = JsonValue::Str(original.into()).emit();
        let parsed = JsonValue::parse(&emitted).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = JsonValue::parse(r#""🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
        assert!(JsonValue::parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn numbers_emit_integers_without_decimal_point() {
        assert_eq!(JsonValue::Num(10.0).emit(), "10");
        assert_eq!(JsonValue::Num(0.5).emit(), "0.5");
        assert_eq!(JsonValue::Num(-3.0).emit(), "-3");
    }

    #[test]
    fn emit_is_deterministic_and_reparseable() {
        let text = r#"{"z": 1, "a": {"k": [true, null, 2.25]}, "m": "v"}"#;
        let v = JsonValue::parse(text).unwrap();
        let emitted = v.emit();
        // Keys sorted by BTreeMap.
        assert!(emitted.starts_with(r#"{"a":"#));
        assert_eq!(JsonValue::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{'a': 1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn u64_extraction_guards_range() {
        assert_eq!(JsonValue::Num(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1.5).as_u64(), None);
        assert_eq!(JsonValue::Str("7".into()).as_u64(), None);
    }
}
