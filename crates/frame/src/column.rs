//! Typed columns with per-cell nulls.

use crate::dtype::DType;
use crate::error::{FrameError, Result};
use crate::value::Value;
use std::collections::BTreeMap;

/// Typed storage backing a [`Column`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Nullable 64-bit integers.
    Int(Vec<Option<i64>>),
    /// Nullable 64-bit floats. Stored floats are never `NaN`; `NaN` is
    /// normalized to `None` on insertion so null handling is uniform.
    Float(Vec<Option<f64>>),
    /// Nullable strings.
    Str(Vec<Option<String>>),
    /// Nullable booleans.
    Bool(Vec<Option<bool>>),
}

impl ColumnData {
    /// Number of cells (including nulls).
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True if the column holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage dtype.
    pub fn dtype(&self) -> DType {
        match self {
            ColumnData::Int(_) => DType::Int,
            ColumnData::Float(_) => DType::Float,
            ColumnData::Str(_) => DType::Str,
            ColumnData::Bool(_) => DType::Bool,
        }
    }
}

/// A named, typed, nullable column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Create a column from typed storage.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Build an int column. `None` entries are nulls.
    pub fn from_ints(name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        Column::new(name, ColumnData::Int(values))
    }

    /// Build a float column. `NaN` entries are normalized to nulls.
    pub fn from_floats(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        let values = values
            .into_iter()
            .map(|v| v.filter(|x| !x.is_nan()))
            .collect();
        Column::new(name, ColumnData::Float(values))
    }

    /// Build a float column with no nulls. `NaN` entries become nulls.
    pub fn from_f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column::from_floats(name, values.into_iter().map(Some).collect())
    }

    /// Build an int column with no nulls.
    pub fn from_i64(name: impl Into<String>, values: Vec<i64>) -> Self {
        Column::from_ints(name, values.into_iter().map(Some).collect())
    }

    /// Build a string column. Empty strings are kept (they are not nulls).
    pub fn from_strs(name: impl Into<String>, values: Vec<Option<String>>) -> Self {
        Column::new(name, ColumnData::Str(values))
    }

    /// Build a string column from `&str` values with no nulls.
    pub fn from_str_slice(name: impl Into<String>, values: &[&str]) -> Self {
        Column::new(
            name,
            ColumnData::Str(values.iter().map(|s| Some(s.to_string())).collect()),
        )
    }

    /// Build a bool column.
    pub fn from_bools(name: impl Into<String>, values: Vec<Option<bool>>) -> Self {
        Column::new(name, ColumnData::Bool(values))
    }

    /// Build a column by inferring a common dtype from dynamic values.
    ///
    /// Promotion rules: any `Str` ⇒ `Str` column (non-strings are rendered);
    /// else any `Float` ⇒ `Float`; else any `Int` ⇒ `Int`; else `Bool`;
    /// an all-null input becomes a `Float` column of nulls.
    pub fn from_values(name: impl Into<String>, values: Vec<Value>) -> Self {
        let mut has_str = false;
        let mut has_float = false;
        let mut has_int = false;
        let mut has_bool = false;
        for v in &values {
            match v {
                Value::Str(_) => has_str = true,
                Value::Float(_) => has_float = true,
                Value::Int(_) => has_int = true,
                Value::Bool(_) => has_bool = true,
                Value::Null => {}
            }
        }
        let name = name.into();
        if has_str {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Null => None,
                    other => Some(other.render()),
                })
                .collect();
            Column::new(name, ColumnData::Str(data))
        } else if has_float || (has_int && has_bool) {
            let data = values.into_iter().map(|v| v.as_f64()).collect();
            Column::new(name, ColumnData::Float(data))
        } else if has_int {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Int(i) => Some(i),
                    _ => None,
                })
                .collect();
            Column::new(name, ColumnData::Int(data))
        } else if has_bool {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Bool(b) => Some(b),
                    _ => None,
                })
                .collect();
            Column::new(name, ColumnData::Bool(data))
        } else {
            Column::new(name, ColumnData::Float(vec![None; values.len()]))
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename in place.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Storage dtype.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Borrow the typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dynamic view of one cell.
    pub fn get(&self, i: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => v[i].map(Value::Int).unwrap_or(Value::Null),
            ColumnData::Float(v) => v[i].map(Value::Float).unwrap_or(Value::Null),
            ColumnData::Str(v) => v[i].clone().map(Value::Str).unwrap_or(Value::Null),
            ColumnData::Bool(v) => v[i].map(Value::Bool).unwrap_or(Value::Null),
        }
    }

    /// True if cell `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Int(v) => v[i].is_none(),
            ColumnData::Float(v) => v[i].is_none(),
            ColumnData::Str(v) => v[i].is_none(),
            ColumnData::Bool(v) => v[i].is_none(),
        }
    }

    /// Count of null cells.
    pub fn null_count(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Fraction of null cells; 0.0 for an empty column.
    pub fn null_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.null_count() as f64 / self.len() as f64
        }
    }

    /// True if the dtype participates in arithmetic.
    pub fn is_numeric(&self) -> bool {
        self.dtype().is_numeric()
    }

    /// Numeric view of the whole column: ints/floats/bools coerce,
    /// strings and nulls are `None`.
    pub fn to_f64(&self) -> Vec<Option<f64>> {
        match &self.data {
            ColumnData::Int(v) => v.iter().map(|x| x.map(|i| i as f64)).collect(),
            ColumnData::Float(v) => v.clone(),
            ColumnData::Bool(v) => v
                .iter()
                .map(|x| x.map(|b| if b { 1.0 } else { 0.0 }))
                .collect(),
            ColumnData::Str(v) => vec![None; v.len()],
        }
    }

    /// Numeric view that requires the column to be numeric.
    pub fn numeric(&self) -> Result<Vec<Option<f64>>> {
        if !self.is_numeric() {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "numeric",
            });
        }
        Ok(self.to_f64())
    }

    /// Rendered-string view of every cell (nulls are `None`). Used for
    /// group keys and categorical handling so ints and strings group alike.
    pub fn to_keys(&self) -> Vec<Option<String>> {
        match &self.data {
            ColumnData::Str(v) => v.clone(),
            _ => (0..self.len())
                .map(|i| {
                    let v = self.get(i);
                    if v.is_null() {
                        None
                    } else {
                        Some(v.render())
                    }
                })
                .collect(),
        }
    }

    /// Distinct non-null rendered values, sorted, with occurrence counts.
    pub fn value_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for key in self.to_keys().into_iter().flatten() {
            *out.entry(key).or_insert(0) += 1;
        }
        out
    }

    /// Number of distinct non-null values.
    pub fn cardinality(&self) -> usize {
        self.value_counts().len()
    }

    /// True if all non-null values are identical (or the column is all-null).
    pub fn is_constant(&self) -> bool {
        self.cardinality() <= 1
    }

    /// Gather a subset of rows into a new column (used by splits / folds).
    pub fn take(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
        };
        Column::new(self.name.clone(), data)
    }

    /// Iterate cells as dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_nan_normalized_to_null() {
        let c = Column::from_f64("x", vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.null_count(), 1);
        assert!(c.is_null(1));
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn from_values_infers_str_on_mixed() {
        let c = Column::from_values(
            "m",
            vec![Value::Int(1), Value::Str("a".into()), Value::Null],
        );
        assert_eq!(c.dtype(), DType::Str);
        assert_eq!(c.get(0), Value::Str("1".into()));
        assert!(c.is_null(2));
    }

    #[test]
    fn from_values_promotes_int_plus_float() {
        let c = Column::from_values("m", vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn from_values_all_null_is_float() {
        let c = Column::from_values("m", vec![Value::Null, Value::Null]);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn to_f64_coerces_bools() {
        let c = Column::from_bools("b", vec![Some(true), Some(false), None]);
        assert_eq!(c.to_f64(), vec![Some(1.0), Some(0.0), None]);
    }

    #[test]
    fn numeric_rejects_strings() {
        let c = Column::from_str_slice("s", &["a", "b"]);
        assert!(matches!(c.numeric(), Err(FrameError::TypeMismatch { .. })));
    }

    #[test]
    fn cardinality_and_constant() {
        let c = Column::from_i64("x", vec![3, 3, 3]);
        assert!(c.is_constant());
        assert_eq!(c.cardinality(), 1);
        let d = Column::from_i64("y", vec![1, 2, 2]);
        assert!(!d.is_constant());
        assert_eq!(d.cardinality(), 2);
    }

    #[test]
    fn all_null_column_is_constant() {
        let c = Column::from_floats("x", vec![None, None]);
        assert!(c.is_constant());
        assert_eq!(c.cardinality(), 0);
    }

    #[test]
    fn take_gathers_rows() {
        let c = Column::from_i64("x", vec![10, 20, 30, 40]);
        let t = c.take(&[3, 1]);
        assert_eq!(t.get(0), Value::Int(40));
        assert_eq!(t.get(1), Value::Int(20));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn value_counts_sorted() {
        let c = Column::from_str_slice("s", &["b", "a", "b"]);
        let counts = c.value_counts();
        let keys: Vec<_> = counts.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(counts["b"], 2);
    }

    #[test]
    fn keys_render_ints_like_strings() {
        let c = Column::from_i64("x", vec![5, 7]);
        assert_eq!(
            c.to_keys(),
            vec![Some("5".to_string()), Some("7".to_string())]
        );
    }
}
