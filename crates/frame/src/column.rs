//! Typed columns with per-cell nulls — v2 columnar storage.
//!
//! Layout (v2): every variant stores a dense value buffer plus a
//! [`NullBitmap`], replacing the v1 `Vec<Option<T>>` layout. Categorical
//! (`Str`) columns are dictionary-encoded: a `Vec<u32>` of codes into an
//! `Arc`-shared interned [`Dictionary`] book, so `take`/`Clone` copy
//! 4 bytes per row instead of cloning every string. Cells at null
//! positions hold an arbitrary (zeroed) value; all reads go through the
//! bitmap first.
//!
//! The public API is unchanged from v1 — `ColumnData` variants are only
//! ever matched inside this module, and equality is semantic (per-row
//! value + validity), so two columns with different dictionary books but
//! the same logical cells compare equal.

use std::sync::Arc;

use crate::bitmap::{BitmapBuilder, NullBitmap};
use crate::dict::Dictionary;
use crate::dtype::DType;
use crate::error::{FrameError, Result};
use crate::value::Value;
use crate::view::{KeysView, NumericView};
use std::collections::BTreeMap;

/// Typed storage backing a [`Column`].
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers + validity. Null rows hold 0.
    Int {
        values: Vec<i64>,
        validity: NullBitmap,
    },
    /// 64-bit floats + validity. Stored floats are never `NaN`; `NaN` is
    /// normalized to null on insertion so null handling is uniform. Null
    /// rows hold 0.0.
    Float {
        values: Vec<f64>,
        validity: NullBitmap,
    },
    /// Booleans + validity. Null rows hold `false`.
    Bool {
        values: Vec<bool>,
        validity: NullBitmap,
    },
    /// Dictionary-encoded strings: codes into a shared interned book.
    /// Null rows hold code 0 (never read through the bitmap gate).
    Dict {
        codes: Vec<u32>,
        validity: NullBitmap,
        dict: Arc<Dictionary>,
    },
}

impl ColumnData {
    /// Pack nullable ints into values + bitmap.
    pub fn from_opt_ints(values: Vec<Option<i64>>) -> Self {
        let validity = NullBitmap::from_flags(values.iter().map(Option::is_some));
        ColumnData::Int {
            values: values.into_iter().map(|v| v.unwrap_or(0)).collect(),
            validity,
        }
    }

    /// Pack nullable floats into values + bitmap (no NaN normalization —
    /// use [`Column::from_floats`] for that).
    pub fn from_opt_floats(values: Vec<Option<f64>>) -> Self {
        let validity = NullBitmap::from_flags(values.iter().map(Option::is_some));
        ColumnData::Float {
            values: values.into_iter().map(|v| v.unwrap_or(0.0)).collect(),
            validity,
        }
    }

    /// Pack nullable bools into values + bitmap.
    pub fn from_opt_bools(values: Vec<Option<bool>>) -> Self {
        let validity = NullBitmap::from_flags(values.iter().map(Option::is_some));
        ColumnData::Bool {
            values: values.into_iter().map(|v| v.unwrap_or(false)).collect(),
            validity,
        }
    }

    /// Dictionary-encode nullable strings (codes in first-occurrence order).
    pub fn from_opt_strs(values: Vec<Option<String>>) -> Self {
        let validity = NullBitmap::from_flags(values.iter().map(Option::is_some));
        let mut dict = Dictionary::new();
        let codes = values
            .into_iter()
            .map(|v| v.map_or(0, |s| dict.intern(&s)))
            .collect();
        ColumnData::Dict {
            codes,
            validity,
            dict: dict.into_shared(),
        }
    }

    /// Number of cells (including nulls).
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Bool { values, .. } => values.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
        }
    }

    /// True if the column holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage dtype. Dictionary-encoded columns present as `Str`.
    pub fn dtype(&self) -> DType {
        match self {
            ColumnData::Int { .. } => DType::Int,
            ColumnData::Float { .. } => DType::Float,
            ColumnData::Bool { .. } => DType::Bool,
            ColumnData::Dict { .. } => DType::Str,
        }
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &NullBitmap {
        match self {
            ColumnData::Int { validity, .. } => validity,
            ColumnData::Float { validity, .. } => validity,
            ColumnData::Bool { validity, .. } => validity,
            ColumnData::Dict { validity, .. } => validity,
        }
    }
}

/// Semantic equality: same dtype, same per-row validity, and equal values
/// at valid rows. Buffer contents at null positions and dictionary book
/// layout (shared vs. compact) are representation details and ignored.
impl PartialEq for ColumnData {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match (self, other) {
            (
                ColumnData::Int {
                    values: a,
                    validity: va,
                },
                ColumnData::Int {
                    values: b,
                    validity: vb,
                },
            ) => (0..a.len())
                .all(|i| va.is_valid(i) == vb.is_valid(i) && (!va.is_valid(i) || a[i] == b[i])),
            (
                ColumnData::Float {
                    values: a,
                    validity: va,
                },
                ColumnData::Float {
                    values: b,
                    validity: vb,
                },
            ) => (0..a.len())
                .all(|i| va.is_valid(i) == vb.is_valid(i) && (!va.is_valid(i) || a[i] == b[i])),
            (
                ColumnData::Bool {
                    values: a,
                    validity: va,
                },
                ColumnData::Bool {
                    values: b,
                    validity: vb,
                },
            ) => (0..a.len())
                .all(|i| va.is_valid(i) == vb.is_valid(i) && (!va.is_valid(i) || a[i] == b[i])),
            (
                ColumnData::Dict {
                    codes: a,
                    validity: va,
                    dict: da,
                },
                ColumnData::Dict {
                    codes: b,
                    validity: vb,
                    dict: db,
                },
            ) => (0..a.len()).all(|i| {
                va.is_valid(i) == vb.is_valid(i)
                    && (!va.is_valid(i) || da.get(a[i]) == db.get(b[i]))
            }),
            _ => false,
        }
    }
}

/// A named, typed, nullable column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Create a column from typed storage.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Build an int column. `None` entries are nulls.
    pub fn from_ints(name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        Column::new(name, ColumnData::from_opt_ints(values))
    }

    /// Build a float column. `NaN` entries are normalized to nulls.
    pub fn from_floats(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        let values = values
            .into_iter()
            .map(|v| v.filter(|x| !x.is_nan()))
            .collect();
        Column::new(name, ColumnData::from_opt_floats(values))
    }

    /// Build a float column with no nulls. `NaN` entries become nulls.
    pub fn from_f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column::from_floats(name, values.into_iter().map(Some).collect())
    }

    /// Build a float column from an iterator in a single pass, packing
    /// values and validity directly — no intermediate `Vec<Option<f64>>`.
    /// `NaN` entries are normalized to nulls like [`Column::from_floats`].
    /// This is the transform hot-path constructor: ops stream view reads
    /// straight into packed storage.
    pub fn from_float_iter(
        name: impl Into<String>,
        iter: impl IntoIterator<Item = Option<f64>>,
    ) -> Self {
        let iter = iter.into_iter();
        let hint = iter.size_hint().0;
        let mut values = Vec::with_capacity(hint);
        let mut validity = BitmapBuilder::with_capacity(hint);
        // Internal iteration (`for_each` lowers to `fold`) keeps view
        // iterators on their monomorphic fast path; the builder buffers
        // validity bits in a register word flushed every 64 rows.
        iter.for_each(|v| match v {
            Some(x) if !x.is_nan() => {
                values.push(x);
                validity.push(true);
            }
            _ => {
                values.push(0.0);
                validity.push(false);
            }
        });
        Column::new(
            name,
            ColumnData::Float {
                values,
                validity: validity.finish(),
            },
        )
    }

    /// Adopt an already-packed float buffer + validity bitmap (the
    /// [`NumericView::map_packed_f64`](crate::view::NumericView) output
    /// shape). Null slots must already be zeroed. The no-NaN storage
    /// invariant is enforced here: the common case pays one vectorizable
    /// scan, and only a buffer that actually contains NaN falls back to
    /// the streaming NaN→null rebuild.
    pub(crate) fn from_packed_floats(
        name: impl Into<String>,
        values: Vec<f64>,
        validity: NullBitmap,
    ) -> Self {
        debug_assert_eq!(values.len(), validity.len());
        if values.iter().copied().any(f64::is_nan) {
            return Column::from_float_iter(
                name,
                values
                    .iter()
                    .zip(validity.iter())
                    .map(|(&v, ok)| ok.then_some(v)),
            );
        }
        Column::new(name, ColumnData::Float { values, validity })
    }

    /// Adopt an already-packed int buffer + validity bitmap. Null slots
    /// must already be zeroed.
    pub(crate) fn from_packed_ints(
        name: impl Into<String>,
        values: Vec<i64>,
        validity: NullBitmap,
    ) -> Self {
        debug_assert_eq!(values.len(), validity.len());
        Column::new(name, ColumnData::Int { values, validity })
    }

    /// Build an int column from an iterator in a single pass (see
    /// [`Column::from_float_iter`]).
    pub fn from_int_iter(
        name: impl Into<String>,
        iter: impl IntoIterator<Item = Option<i64>>,
    ) -> Self {
        let iter = iter.into_iter();
        let hint = iter.size_hint().0;
        let mut values = Vec::with_capacity(hint);
        let mut validity = BitmapBuilder::with_capacity(hint);
        iter.for_each(|v| {
            values.push(v.unwrap_or(0));
            validity.push(v.is_some());
        });
        Column::new(
            name,
            ColumnData::Int {
                values,
                validity: validity.finish(),
            },
        )
    }

    /// Build an int column with no nulls.
    pub fn from_i64(name: impl Into<String>, values: Vec<i64>) -> Self {
        Column::from_ints(name, values.into_iter().map(Some).collect())
    }

    /// Build a string column. Empty strings are kept (they are not nulls).
    pub fn from_strs(name: impl Into<String>, values: Vec<Option<String>>) -> Self {
        Column::new(name, ColumnData::from_opt_strs(values))
    }

    /// Build a string column from `&str` values with no nulls.
    pub fn from_str_slice(name: impl Into<String>, values: &[&str]) -> Self {
        Column::from_strs(name, values.iter().map(|s| Some(s.to_string())).collect())
    }

    /// Build a bool column.
    pub fn from_bools(name: impl Into<String>, values: Vec<Option<bool>>) -> Self {
        Column::new(name, ColumnData::from_opt_bools(values))
    }

    /// Build a column by inferring a common dtype from dynamic values.
    ///
    /// Promotion rules: any `Str` ⇒ `Str` column (non-strings are rendered);
    /// else any `Float` ⇒ `Float`; else any `Int` ⇒ `Int`; else `Bool`;
    /// an all-null input becomes a `Float` column of nulls.
    pub fn from_values(name: impl Into<String>, values: Vec<Value>) -> Self {
        let mut has_str = false;
        let mut has_float = false;
        let mut has_int = false;
        let mut has_bool = false;
        for v in &values {
            match v {
                Value::Str(_) => has_str = true,
                Value::Float(_) => has_float = true,
                Value::Int(_) => has_int = true,
                Value::Bool(_) => has_bool = true,
                Value::Null => {}
            }
        }
        let name = name.into();
        if has_str {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Null => None,
                    other => Some(other.render()),
                })
                .collect();
            Column::from_strs(name, data)
        } else if has_float || (has_int && has_bool) {
            let data = values.into_iter().map(|v| v.as_f64()).collect();
            Column::new(name, ColumnData::from_opt_floats(data))
        } else if has_int {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Int(i) => Some(i),
                    _ => None,
                })
                .collect();
            Column::from_ints(name, data)
        } else if has_bool {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Bool(b) => Some(b),
                    _ => None,
                })
                .collect();
            Column::from_bools(name, data)
        } else {
            Column::new(name, ColumnData::from_opt_floats(vec![None; values.len()]))
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename in place.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Storage dtype.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Borrow the typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dynamic view of one cell.
    pub fn get(&self, i: usize) -> Value {
        match &self.data {
            ColumnData::Int { values, validity } => {
                if validity.is_valid(i) {
                    Value::Int(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Float { values, validity } => {
                if validity.is_valid(i) {
                    Value::Float(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Bool { values, validity } => {
                if validity.is_valid(i) {
                    Value::Bool(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Dict {
                codes,
                validity,
                dict,
            } => {
                if validity.is_valid(i) {
                    Value::Str(dict.get(codes[i]).to_string())
                } else {
                    Value::Null
                }
            }
        }
    }

    /// True if cell `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        !self.data.validity().is_valid(i)
    }

    /// Count of null cells — a bitmap popcount, not a scan.
    pub fn null_count(&self) -> usize {
        self.data.validity().count_null()
    }

    /// Fraction of null cells; 0.0 for an empty column.
    pub fn null_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.null_count() as f64 / self.len() as f64
        }
    }

    /// True if the dtype participates in arithmetic.
    pub fn is_numeric(&self) -> bool {
        self.dtype().is_numeric()
    }

    /// Zero-copy numeric read-view. Errors for `Str` columns.
    pub fn numeric_view(&self) -> Result<NumericView<'_>> {
        match &self.data {
            ColumnData::Int { values, validity } => Ok(NumericView::Int { values, validity }),
            ColumnData::Float { values, validity } => Ok(NumericView::Float { values, validity }),
            ColumnData::Bool { values, validity } => Ok(NumericView::Bool { values, validity }),
            ColumnData::Dict { .. } => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "numeric",
            }),
        }
    }

    /// Categorical read-view: zero-copy for `Str` columns, rendered
    /// fallback (one allocation pass) for numeric dtypes.
    pub fn keys_view(&self) -> KeysView<'_> {
        match &self.data {
            ColumnData::Dict {
                codes,
                validity,
                dict,
            } => KeysView::Dict {
                codes,
                validity,
                dict,
            },
            _ => KeysView::Owned(
                (0..self.len())
                    .map(|i| {
                        let v = self.get(i);
                        if v.is_null() {
                            None
                        } else {
                            Some(v.render())
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// Borrow the dictionary-encoded parts of a `Str` column:
    /// `(codes, validity, book)`. `None` for numeric dtypes.
    pub fn dict_parts(&self) -> Option<(&[u32], &NullBitmap, &Arc<Dictionary>)> {
        match &self.data {
            ColumnData::Dict {
                codes,
                validity,
                dict,
            } => Some((codes, validity, dict)),
            _ => None,
        }
    }

    /// Numeric view of the whole column: ints/floats/bools coerce,
    /// strings and nulls are `None`. Materializes; the ops hot paths use
    /// [`Column::numeric_view`] instead.
    pub fn to_f64(&self) -> Vec<Option<f64>> {
        match self.numeric_view() {
            Ok(v) => v.to_vec(),
            Err(_) => vec![None; self.len()],
        }
    }

    /// Materialized numeric view that requires the column to be numeric.
    pub fn numeric(&self) -> Result<Vec<Option<f64>>> {
        Ok(self.numeric_view()?.to_vec())
    }

    /// Rendered-string view of every cell (nulls are `None`). Used for
    /// group keys and categorical handling so ints and strings group alike.
    /// Materializes; hot paths use [`Column::keys_view`].
    pub fn to_keys(&self) -> Vec<Option<String>> {
        match self.keys_view() {
            KeysView::Owned(v) => v,
            view => view.iter().map(|k| k.map(str::to_string)).collect(),
        }
    }

    /// Distinct non-null rendered values, sorted, with occurrence counts.
    ///
    /// The sorted `BTreeMap` return is a contract (`get_dummies` derives
    /// its column order from it); accumulation is O(n) over dictionary
    /// codes for `Str` columns rather than a per-row map lookup.
    pub fn value_counts(&self) -> BTreeMap<String, usize> {
        if let Some((codes, validity, dict)) = self.dict_parts() {
            let mut per_code = vec![0usize; dict.len()];
            for (i, &c) in codes.iter().enumerate() {
                if validity.is_valid(i) {
                    per_code[c as usize] += 1;
                }
            }
            return dict
                .iter()
                .filter(|&(c, _)| per_code[c as usize] > 0)
                .map(|(c, s)| (s.to_string(), per_code[c as usize]))
                .collect();
        }
        let mut out = BTreeMap::new();
        for key in self.to_keys().into_iter().flatten() {
            *out.entry(key).or_insert(0) += 1;
        }
        out
    }

    /// Number of distinct non-null values.
    pub fn cardinality(&self) -> usize {
        if let Some((codes, validity, dict)) = self.dict_parts() {
            // A take()-derived column shares a larger parent book, so count
            // codes actually present, not the book size.
            let mut seen = vec![false; dict.len()];
            let mut distinct = 0;
            for (i, &c) in codes.iter().enumerate() {
                if validity.is_valid(i) && !seen[c as usize] {
                    seen[c as usize] = true;
                    distinct += 1;
                }
            }
            return distinct;
        }
        self.value_counts().len()
    }

    /// True if all non-null values are identical (or the column is all-null).
    ///
    /// Numeric columns scan the packed value buffer directly (floats
    /// compare by bits, so `-0.0` and `0.0` stay distinct — matching the
    /// rendered-key distinction `cardinality` draws) instead of paying
    /// `value_counts`' per-row string rendering. This is an evaluation-
    /// stage read: `check_new_column` calls it on every realized
    /// candidate.
    pub fn is_constant(&self) -> bool {
        match &self.data {
            ColumnData::Int { values, validity } => packed_is_constant(values, validity),
            ColumnData::Bool { values, validity } => packed_is_constant(values, validity),
            ColumnData::Float { values, validity } => {
                packed_is_constant_by(values, validity, |v| v.to_bits())
            }
            ColumnData::Dict { .. } => self.cardinality() <= 1,
        }
    }

    /// Gather a subset of rows into a new column (used by splits / folds).
    /// `Str` columns share the dictionary book (refcount bump, no string
    /// clones).
    pub fn take(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Int { values, validity } => ColumnData::Int {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: validity.take(indices),
            },
            ColumnData::Float { values, validity } => ColumnData::Float {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: validity.take(indices),
            },
            ColumnData::Bool { values, validity } => ColumnData::Bool {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: validity.take(indices),
            },
            ColumnData::Dict {
                codes,
                validity,
                dict,
            } => ColumnData::Dict {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                validity: validity.take(indices),
                dict: Arc::clone(dict),
            },
        };
        Column::new(self.name.clone(), data)
    }

    /// Iterate cells as dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// All present values equal? All-valid columns scan the raw slice
/// (vectorizable, no per-row validity logic); columns with nulls stream
/// values through the bitmap.
fn packed_is_constant<T: Copy + PartialEq>(values: &[T], validity: &NullBitmap) -> bool {
    packed_is_constant_by(values, validity, |v| v)
}

/// [`packed_is_constant`] under a key function (floats compare by bits).
fn packed_is_constant_by<T: Copy, K: PartialEq>(
    values: &[T],
    validity: &NullBitmap,
    key: impl Fn(T) -> K,
) -> bool {
    if validity.all_are_valid() {
        return values
            .first()
            .map(|&f| values.iter().all(|&v| key(v) == key(f)))
            .unwrap_or(true);
    }
    let mut present = values
        .iter()
        .zip(validity.iter())
        .filter(|&(_, ok)| ok)
        .map(|(&v, _)| key(v));
    match present.next() {
        None => true,
        Some(f) => present.all(|k| k == f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_nan_normalized_to_null() {
        let c = Column::from_f64("x", vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.null_count(), 1);
        assert!(c.is_null(1));
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn from_values_infers_str_on_mixed() {
        let c = Column::from_values(
            "m",
            vec![Value::Int(1), Value::Str("a".into()), Value::Null],
        );
        assert_eq!(c.dtype(), DType::Str);
        assert_eq!(c.get(0), Value::Str("1".into()));
        assert!(c.is_null(2));
    }

    #[test]
    fn from_values_promotes_int_plus_float() {
        let c = Column::from_values("m", vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn from_values_all_null_is_float() {
        let c = Column::from_values("m", vec![Value::Null, Value::Null]);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn to_f64_coerces_bools() {
        let c = Column::from_bools("b", vec![Some(true), Some(false), None]);
        assert_eq!(c.to_f64(), vec![Some(1.0), Some(0.0), None]);
    }

    #[test]
    fn numeric_rejects_strings() {
        let c = Column::from_str_slice("s", &["a", "b"]);
        assert!(matches!(c.numeric(), Err(FrameError::TypeMismatch { .. })));
    }

    #[test]
    fn cardinality_and_constant() {
        let c = Column::from_i64("x", vec![3, 3, 3]);
        assert!(c.is_constant());
        assert_eq!(c.cardinality(), 1);
        let d = Column::from_i64("y", vec![1, 2, 2]);
        assert!(!d.is_constant());
        assert_eq!(d.cardinality(), 2);
    }

    #[test]
    fn constant_skips_nulls_and_keeps_signed_zero_distinct() {
        // Nulls don't break a constant run (the packed scan must read
        // through the bitmap, not the zeroed value slots).
        let c = Column::from_floats("x", vec![Some(7.0), None, Some(7.0)]);
        assert!(c.is_constant());
        // Null slots store 0.0 — a constant 7.0 column with a null must
        // not be declared non-constant by the raw slice.
        let d = Column::from_ints("y", vec![Some(5), None]);
        assert!(d.is_constant());
        // -0.0 vs 0.0 compare by bits, matching cardinality's rendered
        // keys ("-0" vs "0").
        let z = Column::from_f64("z", vec![0.0, -0.0]);
        assert!(!z.is_constant());
        assert_eq!(z.cardinality(), 2);
        // Str columns still route through the dictionary.
        let s = Column::from_str_slice("s", &["a", "a"]);
        assert!(s.is_constant());
    }

    #[test]
    fn all_null_column_is_constant() {
        let c = Column::from_floats("x", vec![None, None]);
        assert!(c.is_constant());
        assert_eq!(c.cardinality(), 0);
    }

    #[test]
    fn take_gathers_rows() {
        let c = Column::from_i64("x", vec![10, 20, 30, 40]);
        let t = c.take(&[3, 1]);
        assert_eq!(t.get(0), Value::Int(40));
        assert_eq!(t.get(1), Value::Int(20));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn value_counts_sorted() {
        let c = Column::from_str_slice("s", &["b", "a", "b"]);
        let counts = c.value_counts();
        let keys: Vec<_> = counts.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(counts["b"], 2);
    }

    #[test]
    fn keys_render_ints_like_strings() {
        let c = Column::from_i64("x", vec![5, 7]);
        assert_eq!(
            c.to_keys(),
            vec![Some("5".to_string()), Some("7".to_string())]
        );
    }

    #[test]
    fn take_shares_dictionary_book() {
        let c = Column::from_str_slice("s", &["p", "q", "p", "r"]);
        let t = c.take(&[3, 0]);
        let (_, _, parent) = c.dict_parts().unwrap();
        let (codes, _, child) = t.dict_parts().unwrap();
        assert!(Arc::ptr_eq(parent, child));
        assert_eq!(codes.len(), 2);
        assert_eq!(t.get(0), Value::Str("r".into()));
        // Cardinality counts codes present, not the shared book size.
        assert_eq!(t.cardinality(), 2);
        assert_eq!(child.len(), 3);
    }

    #[test]
    fn equality_is_semantic_across_books() {
        // A take()-derived column (shared 3-entry book) equals a freshly
        // built column (compact 2-entry book) with the same logical cells.
        let big = Column::from_strs(
            "s",
            vec![Some("a".into()), Some("b".into()), Some("c".into()), None],
        );
        let sub = big.take(&[2, 0, 3]);
        let fresh = Column::from_strs("s", vec![Some("c".into()), Some("a".into()), None]);
        assert_eq!(sub, fresh);
        assert_ne!(
            sub,
            Column::from_strs("s", vec![Some("c".into()), Some("b".into()), None])
        );
    }

    #[test]
    fn null_slots_do_not_affect_equality() {
        let a = Column::from_ints("x", vec![Some(1), None]);
        let b = Column::from_ints("x", vec![Some(1), None]);
        assert_eq!(a, b);
        assert_ne!(a, Column::from_ints("x", vec![Some(1), Some(0)]));
    }
}
