//! The [`DataFrame`]: an ordered collection of equal-length named columns.

use std::collections::BTreeMap;

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::index::StableMap;
use crate::value::Value;

/// An ordered collection of equal-length, uniquely-named [`Column`]s.
///
/// This is the substrate every generated transformation executes against —
/// the reproduction's stand-in for a pandas `DataFrame`.
///
/// ```
/// use smartfeat_frame::{Column, DataFrame};
/// let df = DataFrame::from_columns(vec![
///     Column::from_i64("a", vec![1, 2, 3]),
///     Column::from_str_slice("g", &["x", "y", "x"]),
/// ])
/// .unwrap();
/// assert_eq!(df.n_rows(), 3);
/// assert_eq!(df.column("g").unwrap().cardinality(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataFrame {
    columns: Vec<Column>,
    index: StableMap<String, usize>,
}

impl DataFrame {
    /// An empty frame (zero columns, zero rows).
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Build a frame from columns, validating lengths and name uniqueness.
    pub fn from_columns(columns: Vec<Column>) -> Result<Self> {
        let mut df = DataFrame::new();
        for c in columns {
            df.add_column(c)?;
        }
        Ok(df)
    }

    /// Number of rows (0 for an empty frame).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// True if a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| FrameError::ColumnNotFound(name.to_string()))
    }

    /// Borrow all columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Append a column. Fails on duplicate name or length mismatch
    /// (unless the frame is still empty).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.index.contains_key(column.name()) {
            return Err(FrameError::DuplicateColumn(column.name().to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                column: column.name().to_string(),
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        self.index
            .insert(column.name().to_string(), self.columns.len());
        self.columns.push(column);
        Ok(())
    }

    /// Add a column, replacing any existing column of the same name.
    pub fn upsert_column(&mut self, column: Column) -> Result<()> {
        if let Some(&i) = self.index.get(column.name()) {
            if !self.columns.is_empty() && column.len() != self.n_rows() {
                return Err(FrameError::LengthMismatch {
                    column: column.name().to_string(),
                    expected: self.n_rows(),
                    actual: column.len(),
                });
            }
            self.columns[i] = column;
            Ok(())
        } else {
            self.add_column(column)
        }
    }

    /// Remove a column by name, returning it.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let i = *self
            .index
            .get(name)
            .ok_or_else(|| FrameError::ColumnNotFound(name.to_string()))?;
        let col = self.columns.remove(i);
        self.rebuild_index();
        Ok(col)
    }

    /// Rename a column.
    pub fn rename_column(&mut self, from: &str, to: &str) -> Result<()> {
        if self.index.contains_key(to) && from != to {
            return Err(FrameError::DuplicateColumn(to.to_string()));
        }
        let i = *self
            .index
            .get(from)
            .ok_or_else(|| FrameError::ColumnNotFound(from.to_string()))?;
        self.columns[i].set_name(to);
        self.rebuild_index();
        Ok(())
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name().to_string(), i))
            .collect();
    }

    /// A new frame with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for &n in names {
            out.add_column(self.column(n)?.clone())?;
        }
        Ok(out)
    }

    /// A new frame with the given rows gathered from this one.
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        let n = self.n_rows();
        if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
            return Err(FrameError::RowOutOfBounds { index: bad, len: n });
        }
        let mut out = DataFrame::new();
        for c in &self.columns {
            out.add_column(c.take(indices))?;
        }
        Ok(out)
    }

    /// One row as dynamic values, in column order.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.n_rows() {
            return Err(FrameError::RowOutOfBounds {
                index: i,
                len: self.n_rows(),
            });
        }
        Ok(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Drop every row containing at least one null (pandas `dropna`).
    /// Returns the kept row indices alongside the new frame.
    pub fn dropna(&self) -> (DataFrame, Vec<usize>) {
        let keep: Vec<usize> = (0..self.n_rows())
            .filter(|&i| self.columns.iter().all(|c| !c.is_null(i)))
            .collect();
        // sfcheck:allow(panic-hygiene) invariant: keep is filtered from 0..n_rows
        let df = self.take(&keep).expect("indices are in range");
        (df, keep)
    }

    /// Convert the named feature columns to a dense row-major matrix for ML.
    ///
    /// Nulls and non-numeric cells become `fill` (typically 0.0 after
    /// factorization, matching the paper's preprocessing).
    pub fn to_matrix(&self, feature_cols: &[&str], fill: f64) -> Result<Vec<Vec<f64>>> {
        let cols: Vec<Vec<Option<f64>>> = feature_cols
            .iter()
            .map(|&n| self.column(n).map(|c| c.to_f64()))
            .collect::<Result<_>>()?;
        let n = self.n_rows();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::with_capacity(cols.len());
            for col in &cols {
                let v = col[i].unwrap_or(fill);
                row.push(if v.is_finite() { v } else { fill });
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Extract a binary label column as 0/1. Non-zero numerics map to 1.
    pub fn to_labels(&self, label_col: &str) -> Result<Vec<u8>> {
        let col = self.column(label_col)?;
        let vals = col.numeric()?;
        Ok(vals
            .into_iter()
            .map(|v| match v {
                Some(x) if x != 0.0 => 1,
                _ => 0,
            })
            .collect())
    }

    /// Replace each string column with integer codes (pandas `factorize`),
    /// leaving numeric columns untouched. Codes are assigned in first-seen
    /// order; nulls stay null. Returns the per-column code books.
    ///
    /// `Str` columns are already dictionary-encoded, so this is a dense
    /// `O(n + k)` code remap (a `take`-derived column may share a larger
    /// parent book, and first-seen order is a property of *this* column's
    /// rows) — no per-row map lookups at all.
    pub fn factorize_strings(&mut self) -> BTreeMap<String, Vec<String>> {
        let mut books = BTreeMap::new();
        let names: Vec<String> = self
            .columns
            .iter()
            .filter(|c| !c.is_numeric())
            .map(|c| c.name().to_string())
            .collect();
        for name in names {
            // sfcheck:allow(panic-hygiene) invariant: name was just collected from self.columns
            let col = self.column(&name).expect("exists");
            let (book, codes) = if let Some((codes, validity, dict)) = col.dict_parts() {
                const UNSEEN: i64 = -1;
                let mut remap = vec![UNSEEN; dict.len()];
                let mut book: Vec<String> = Vec::new();
                let out: Vec<Option<i64>> = codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        validity.is_valid(i).then(|| {
                            let slot = &mut remap[c as usize];
                            if *slot == UNSEEN {
                                *slot = book.len() as i64;
                                book.push(dict.get(c).to_string());
                            }
                            *slot
                        })
                    })
                    .collect();
                (book, out)
            } else {
                // Non-dict fallback (numeric columns never reach here, but
                // keep the general path honest for future dtypes).
                let keys = col.to_keys();
                let mut book: Vec<String> = Vec::new();
                let mut lookup: StableMap<String, i64> = StableMap::new();
                let codes: Vec<Option<i64>> = keys
                    .into_iter()
                    .map(|k| {
                        k.map(|key| {
                            *lookup.entry_or_insert_with(key.clone(), || {
                                book.push(key);
                                (book.len() - 1) as i64
                            })
                        })
                    })
                    .collect();
                (book, codes)
            };
            self.upsert_column(Column::from_ints(name.clone(), codes))
                // sfcheck:allow(panic-hygiene) invariant: codes has one entry per key of an existing column
                .expect("same length");
            books.insert(name, book);
        }
        books
    }

    /// Pretty-print the first `n` rows as an aligned text table.
    pub fn head(&self, n: usize) -> String {
        let n = n.min(self.n_rows());
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name().len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(i).render()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!("{:<width$}  ", c.name(), width = w));
        }
        out.push('\n');
        for row in cells {
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!("{:<width$}  ", cell, width = w));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_i64("a", vec![1, 2, 3]),
            Column::from_f64("b", vec![0.5, 1.5, 2.5]),
            Column::from_str_slice("c", &["x", "y", "x"]),
        ])
        .unwrap()
    }

    #[test]
    fn shape_and_names() {
        let df = sample();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.column_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut df = sample();
        let err = df.add_column(Column::from_i64("a", vec![9, 9, 9]));
        assert!(matches!(err, Err(FrameError::DuplicateColumn(_))));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut df = sample();
        let err = df.add_column(Column::from_i64("d", vec![1]));
        assert!(matches!(err, Err(FrameError::LengthMismatch { .. })));
    }

    #[test]
    fn upsert_replaces() {
        let mut df = sample();
        df.upsert_column(Column::from_i64("a", vec![7, 8, 9]))
            .unwrap();
        assert_eq!(df.column("a").unwrap().get(0), Value::Int(7));
        assert_eq!(df.n_cols(), 3);
    }

    #[test]
    fn drop_and_rename_keep_index_consistent() {
        let mut df = sample();
        df.drop_column("b").unwrap();
        assert!(!df.has_column("b"));
        assert_eq!(df.column("c").unwrap().get(0), Value::Str("x".into()));
        df.rename_column("c", "cat").unwrap();
        assert!(df.has_column("cat"));
        assert!(df.column("c").is_err());
    }

    #[test]
    fn rename_to_existing_rejected() {
        let mut df = sample();
        assert!(matches!(
            df.rename_column("a", "b"),
            Err(FrameError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn select_subset_order() {
        let df = sample();
        let s = df.select(&["c", "a"]).unwrap();
        assert_eq!(s.column_names(), vec!["c", "a"]);
        assert_eq!(s.n_rows(), 3);
    }

    #[test]
    fn take_out_of_bounds() {
        let df = sample();
        assert!(matches!(
            df.take(&[0, 5]),
            Err(FrameError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn dropna_removes_rows_with_any_null() {
        let df = DataFrame::from_columns(vec![
            Column::from_ints("a", vec![Some(1), None, Some(3)]),
            Column::from_f64("b", vec![1.0, 2.0, 3.0]),
        ])
        .unwrap();
        let (clean, keep) = df.dropna();
        assert_eq!(clean.n_rows(), 2);
        assert_eq!(keep, vec![0, 2]);
    }

    #[test]
    fn to_matrix_fills_nulls_and_strings() {
        let df = DataFrame::from_columns(vec![
            Column::from_ints("a", vec![Some(1), None]),
            Column::from_str_slice("s", &["p", "q"]),
        ])
        .unwrap();
        let m = df.to_matrix(&["a", "s"], -1.0).unwrap();
        assert_eq!(m, vec![vec![1.0, -1.0], vec![-1.0, -1.0]]);
    }

    #[test]
    fn to_labels_binarizes() {
        let df = DataFrame::from_columns(vec![Column::from_i64("y", vec![0, 1, 2, 0])]).unwrap();
        assert_eq!(df.to_labels("y").unwrap(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn factorize_strings_assigns_first_seen_codes() {
        let mut df = sample();
        let books = df.factorize_strings();
        let c = df.column("c").unwrap();
        assert_eq!(c.get(0), Value::Int(0));
        assert_eq!(c.get(1), Value::Int(1));
        assert_eq!(c.get(2), Value::Int(0));
        assert_eq!(books["c"], vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn head_renders() {
        let df = sample();
        let text = df.head(2);
        assert!(text.contains('a'));
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn row_access() {
        let df = sample();
        let r = df.row(1).unwrap();
        assert_eq!(r[0], Value::Int(2));
        assert!(df.row(10).is_err());
    }
}
