//! Deterministic open-addressing hash index with first-occurrence iteration
//! order.
//!
//! [`StableMap`] restores the O(1) lookups the engine gave up when PR 4
//! swapped `HashMap` for `BTreeMap` to satisfy the determinism contract.
//! It is deterministic by *construction*, not by sortedness:
//!
//! - the hash function is a fixed-seed FNV-1a with a SplitMix64-style
//!   finalizer — no per-process `RandomState`, so probe sequences are
//!   identical across runs, platforms, and thread counts;
//! - iteration walks the insertion-ordered entry vector, never the slot
//!   table, so iteration order is the first-occurrence order of the keys
//!   and cannot depend on hash values at all.
//!
//! The slot table holds `u32` indices into the entry vector (linear
//! probing, power-of-two capacity, ≤ 7/8 load). There is no `remove`:
//! every engine use is insert-or-lookup (group keys, dictionary interning,
//! factorize books, FM memo keys), and omitting tombstones keeps probing
//! trivially deterministic.
//!
//! sfcheck's `hash-collections` lint blesses this type by name: it is the
//! sanctioned hash container for output-feeding crates.

use std::borrow::Borrow;

/// Sentinel for an empty slot in the probe table.
const EMPTY: u32 = u32::MAX;

/// Fixed FNV-1a offset basis, XOR-folded with the engine's own seed so the
/// probe layout is this crate's, not literally FNV's.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x5EED_1DE3_2024_0006;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming fixed-seed hasher fed by [`StableHash`] implementations.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feed raw bytes (FNV-1a absorption).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feed a u64 as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// SplitMix64-style finalizer: scrambles the FNV state so low-entropy
    /// keys still spread across power-of-two tables.
    fn finish(&self) -> u64 {
        let mut z = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Keys hashable with a fixed seed. Implementations must feed the same
/// bytes for values that compare equal (the `Borrow` contract: `String`
/// and `str` must agree).
pub trait StableHash {
    fn stable_hash(&self, h: &mut StableHasher);
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bytes(self.as_bytes());
        // Length-prefix-free terminator so ("a","b") ≠ ("ab","") in tuples.
        h.write_bytes(&[0xFF]);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl StableHash for i64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableHash for u32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bytes(&[*self as u8]);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

fn hash_of<Q: StableHash + ?Sized>(key: &Q) -> u64 {
    let mut h = StableHasher::new();
    key.stable_hash(&mut h);
    h.finish()
}

/// An insertion-ordered hash map with fixed-seed hashing and no `remove`.
///
/// Lookup/insert are O(1) expected; iteration is first-occurrence order of
/// the keys, deterministic regardless of hash values.
#[derive(Debug, Clone)]
pub struct StableMap<K, V> {
    entries: Vec<(K, V)>,
    slots: Vec<u32>,
    mask: usize,
}

impl<K: StableHash + Eq, V> Default for StableMap<K, V> {
    fn default() -> Self {
        StableMap::new()
    }
}

impl<K: StableHash + Eq, V> StableMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        StableMap {
            entries: Vec::new(),
            slots: Vec::new(),
            mask: 0,
        }
    }

    /// An empty map sized for `n` insertions without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = StableMap::new();
        m.entries.reserve(n);
        m.grow_slots((n * 8 / 7 + 1).next_power_of_two().max(8));
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn grow_slots(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        self.slots = vec![EMPTY; capacity];
        self.mask = capacity - 1;
        for (i, (k, _)) in self.entries.iter().enumerate() {
            let mut slot = (hash_of(k) as usize) & self.mask;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = i as u32;
        }
    }

    /// Grow if one more insertion would push load above 7/8.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() || (self.entries.len() + 1) * 8 > self.slots.len() * 7 {
            let want = ((self.entries.len() + 1) * 2).next_power_of_two().max(8);
            self.grow_slots(want);
        }
    }

    /// Find the slot holding `key`, or the empty slot where it would go.
    fn probe<Q>(&self, key: &Q) -> (usize, Option<usize>)
    where
        K: Borrow<Q>,
        Q: StableHash + Eq + ?Sized,
    {
        debug_assert!(!self.slots.is_empty());
        let mut slot = (hash_of(key) as usize) & self.mask;
        loop {
            match self.slots[slot] {
                EMPTY => return (slot, None),
                e => {
                    let i = e as usize;
                    if self.entries[i].0.borrow() == key {
                        return (slot, Some(i));
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.reserve_one();
        let (slot, hit) = self.probe(&key);
        match hit {
            Some(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            None => {
                self.slots[slot] = self.entries.len() as u32;
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Borrow the value for `key`, if present. Accepts borrowed key forms
    /// (`&str` against a `StableMap<String, _>`).
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: StableHash + Eq + ?Sized,
    {
        if self.slots.is_empty() {
            return None;
        }
        self.probe(key).1.map(|i| &self.entries[i].1)
    }

    /// Mutably borrow the value for `key`, if present.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: StableHash + Eq + ?Sized,
    {
        if self.slots.is_empty() {
            return None;
        }
        self.probe(key).1.map(|i| &mut self.entries[i].1)
    }

    /// True if `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: StableHash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Get the value for `key`, inserting `default()` first if absent.
    pub fn entry_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        self.reserve_one();
        let (slot, hit) = self.probe(&key);
        let i = match hit {
            Some(i) => i,
            None => {
                let i = self.entries.len();
                self.slots[slot] = i as u32;
                self.entries.push((key, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Entries in first-occurrence (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in first-occurrence order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in first-occurrence order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Consume into entries in first-occurrence order.
    pub fn into_entries(self) -> Vec<(K, V)> {
        self.entries
    }
}

impl<K: StableHash + Eq, V> FromIterator<(K, V)> for StableMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut m = StableMap::with_capacity(iter.size_hint().0);
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: StableHash + Eq, V> IntoIterator for StableMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// An insertion-ordered hash set over [`StableMap`].
#[derive(Debug, Clone, Default)]
pub struct StableSet<K: StableHash + Eq> {
    map: StableMap<K, ()>,
}

impl<K: StableHash + Eq> StableSet<K> {
    /// An empty set.
    pub fn new() -> Self {
        StableSet {
            map: StableMap::new(),
        }
    }

    /// Insert; returns true if the value was not already present.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// True if `key` is present.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: StableHash + Eq + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Values in first-occurrence order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m: StableMap<String, i64> = StableMap::new();
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("b".into(), 2), None);
        assert_eq!(m.insert("a".into(), 3), Some(1));
        assert_eq!(m.get("a"), Some(&3));
        assert_eq!(m.get("b"), Some(&2));
        assert_eq!(m.get("c"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_first_occurrence_order() {
        let mut m: StableMap<String, usize> = StableMap::new();
        for (i, k) in ["zebra", "apple", "mango", "apple", "zebra", "kiwi"]
            .iter()
            .enumerate()
        {
            m.entry_or_insert_with(k.to_string(), || i);
        }
        let keys: Vec<&str> = m.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["zebra", "apple", "mango", "kiwi"]);
        // entry_or_insert_with kept the first value.
        assert_eq!(m.get("zebra"), Some(&0));
    }

    #[test]
    fn survives_growth_with_many_keys() {
        let mut m: StableMap<i64, i64> = StableMap::new();
        for i in 0..10_000 {
            m.insert(i * 7, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(m.get(&(i * 7)), Some(&i), "key {}", i * 7);
        }
        let first: Vec<i64> = m.keys().take(3).copied().collect();
        assert_eq!(first, vec![0, 7, 14]);
    }

    #[test]
    fn borrowed_str_lookup_against_string_keys() {
        let mut m: StableMap<String, u32> = StableMap::new();
        m.insert("hello".to_string(), 5);
        assert!(m.contains_key("hello"));
        assert_eq!(m.get_mut("hello").map(|v| std::mem::replace(v, 9)), Some(5));
        assert_eq!(m.get("hello"), Some(&9));
    }

    #[test]
    fn vec_keys_hash_structurally() {
        let mut m: StableMap<Vec<String>, u32> = StableMap::new();
        m.insert(vec!["a".into(), "b".into()], 1);
        m.insert(vec!["ab".into()], 2);
        assert_eq!(m.get(&vec!["a".to_string(), "b".to_string()]), Some(&1));
        assert_eq!(m.get(&vec!["ab".to_string()]), Some(&2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashes_are_stable_across_calls() {
        // A fixed key must hash identically every time (fixed seed, no
        // per-process state) — this is the determinism contract.
        assert_eq!(hash_of("smartfeat"), hash_of("smartfeat"));
        assert_eq!(hash_of(&42i64), hash_of(&42i64));
        assert_ne!(hash_of("a"), hash_of("b"));
    }

    #[test]
    fn set_semantics() {
        let mut s: StableSet<String> = StableSet::new();
        assert!(s.insert("x".into()));
        assert!(!s.insert("x".into()));
        assert!(s.insert("y".into()));
        assert!(s.contains("x"));
        assert!(!s.contains("z"));
        let vals: Vec<&str> = s.iter().map(String::as_str).collect();
        assert_eq!(vals, vec!["x", "y"]);
    }

    #[test]
    fn from_iter_collects() {
        let m: StableMap<String, i64> = [("k1".to_string(), 1), ("k2".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(m.get("k1"), Some(&1));
        assert_eq!(m.into_entries().len(), 2);
    }
}
