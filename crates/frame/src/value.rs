//! Dynamically-typed cell values.

use std::fmt;

use crate::dtype::DType;

/// A single cell in a [`crate::DataFrame`].
///
/// `Value` is the dynamically-typed view used at API boundaries (row access,
/// CSV parsing, FM row serialization). Column storage itself is typed — see
/// [`crate::ColumnData`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value (pandas `NaN` / `None`).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` floats are normalized to `Null` on insertion.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The dtype this value naturally belongs to, or `None` for nulls.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DType::Int),
            Value::Float(_) => Some(DType::Float),
            Value::Str(_) => Some(DType::Str),
            Value::Bool(_) => Some(DType::Bool),
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints, floats and bools coerce to `f64`; strings and
    /// nulls do not.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// String view: only `Str` values return `Some`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render the value the way the FM row-serializer and CSV writer expect.
    /// Nulls render as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format_float(*v),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

/// Format a float the way pandas' default repr does: integral floats get a
/// trailing `.0`, others use the shortest roundtrip representation.
fn format_float(v: f64) -> String {
    if v.is_nan() {
        return String::new();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_f64_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Bool(false).as_f64(), Some(0.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn nan_float_becomes_null() {
        let v: Value = f64::NAN.into();
        assert!(v.is_null());
    }

    #[test]
    fn render_matches_pandas_style() {
        assert_eq!(Value::Float(3.0).render(), "3.0");
        assert_eq!(Value::Float(3.25).render(), "3.25");
        assert_eq!(Value::Int(-4).render(), "-4");
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Bool(true).render(), "true");
    }

    #[test]
    fn option_into_value() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(7i64).into();
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn dtype_of_values() {
        assert_eq!(Value::Int(1).dtype(), Some(DType::Int));
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Str("a".into()).dtype(), Some(DType::Str));
    }
}
