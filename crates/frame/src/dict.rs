//! Interned string dictionaries backing `Dict`-encoded categorical columns.
//!
//! A [`Dictionary`] is an append-only book of distinct strings plus a
//! [`StableMap`] from string to code. Codes are `u32` indices into the
//! book, assigned in first-occurrence order — the same order pandas'
//! `factorize` uses, which keeps the engine's factorize/groupby outputs
//! bit-identical to the v1 `Vec<Option<String>>` layout.
//!
//! Columns share dictionaries via `Arc`: `Column::take` and `Clone` copy
//! codes (4 bytes/row) and bump a refcount instead of cloning every string.

use std::sync::Arc;

use crate::index::StableMap;

/// An append-only interning table: distinct strings ↔ dense `u32` codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    book: Vec<String>,
    lookup: StableMap<String, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern `s`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.lookup.get(s) {
            return code;
        }
        let code = self.book.len() as u32;
        self.book.push(s.to_string());
        self.lookup.insert(s.to_string(), code);
        code
    }

    /// The code of `s`, if already interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// The string behind `code`. Panics on an out-of-book code — codes are
    /// produced only by `intern`, so a miss is an engine bug.
    pub fn get(&self, code: u32) -> &str {
        &self.book[code as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.book.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.book.is_empty()
    }

    /// The book in code order (first-occurrence order of interning).
    pub fn book(&self) -> &[String] {
        &self.book
    }

    /// Iterate `(code, string)` in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.book
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }

    /// Wrap in an [`Arc`] for sharing across columns.
    pub fn into_shared(self) -> Arc<Dictionary> {
        Arc::new(self)
    }
}

/// Dictionaries compare by book content (lookup tables are derived state).
impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.book == other.book
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_first_occurrence_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("x"), 0);
        assert_eq!(d.intern("y"), 1);
        assert_eq!(d.intern("x"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(1), "y");
        assert_eq!(d.code_of("y"), Some(1));
        assert_eq!(d.code_of("z"), None);
    }

    #[test]
    fn empty_string_is_a_value() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern(""), 0);
        assert_eq!(d.get(0), "");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn book_order_matches_codes() {
        let mut d = Dictionary::new();
        for s in ["c", "a", "b", "a"] {
            d.intern(s);
        }
        assert_eq!(d.book(), &["c".to_string(), "a".into(), "b".into()]);
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "c"), (1, "a"), (2, "b")]);
    }

    #[test]
    fn equality_ignores_lookup_state() {
        let mut a = Dictionary::new();
        a.intern("p");
        a.intern("q");
        let mut b = Dictionary::new();
        b.intern("p");
        b.intern("q");
        b.intern("p"); // extra lookup traffic, same book
        assert_eq!(a, b);
    }
}
