//! Unary transformations: normalization, bucketization, elementwise maps.

use crate::column::Column;
use crate::error::{FrameError, Result};

/// Normalization flavors supported by the unary operator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// `(x - min) / (max - min)`; constant columns normalize to 0.
    MinMax,
    /// `(x - mean) / std`; zero-variance columns normalize to 0.
    ZScore,
}

/// Elementwise unary functions (the "math" unary operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryFn {
    /// `ln(1 + |x|)` — the paper's log transform made total.
    Log1pAbs,
    /// `sqrt(|x|)`.
    SqrtAbs,
    /// `x^2`.
    Square,
    /// `x^3`.
    Cube,
    /// `1 / x`; zero maps to null (the *safe* reciprocal).
    Reciprocal,
    /// `|x|`.
    Abs,
    /// Identity (useful for renaming/copying through the transform AST).
    Identity,
}

impl UnaryFn {
    /// Apply to one value; `None` means the result is null.
    pub fn apply(self, x: f64) -> Option<f64> {
        let v = match self {
            UnaryFn::Log1pAbs => (1.0 + x.abs()).ln(),
            UnaryFn::SqrtAbs => x.abs().sqrt(),
            UnaryFn::Square => x * x,
            UnaryFn::Cube => x * x * x,
            UnaryFn::Reciprocal => {
                if x == 0.0 {
                    return None;
                }
                1.0 / x
            }
            UnaryFn::Abs => x.abs(),
            UnaryFn::Identity => x,
        };
        v.is_finite().then_some(v)
    }

    /// Name used when composing generated feature names.
    pub fn name(self) -> &'static str {
        match self {
            UnaryFn::Log1pAbs => "log",
            UnaryFn::SqrtAbs => "sqrt",
            UnaryFn::Square => "square",
            UnaryFn::Cube => "cube",
            UnaryFn::Reciprocal => "reciprocal",
            UnaryFn::Abs => "abs",
            UnaryFn::Identity => "identity",
        }
    }
}

/// Apply an elementwise unary function, producing `out_name`.
pub fn unary_map(col: &Column, f: UnaryFn, out_name: &str) -> Result<Column> {
    let xs = col.numeric_view()?;
    Ok(Column::from_float_iter(
        out_name,
        xs.iter().map(|x| x.and_then(|v| f.apply(v))),
    ))
}

/// Normalize a numeric column.
pub fn normalize(col: &Column, kind: NormKind, out_name: &str) -> Result<Column> {
    let xs = col.numeric_view()?;
    // Stats stream through the view fold — no materialized `present` vec.
    // Fold order is row order, so the float accumulation is bit-identical
    // to summing a collected buffer.
    Ok(match kind {
        NormKind::MinMax => {
            let n = xs.present_count();
            let (min, max) = xs.fold_present((f64::INFINITY, f64::NEG_INFINITY), |(mn, mx), v| {
                (mn.min(v), mx.max(v))
            });
            if n == 0 {
                return Ok(Column::from_floats(out_name, vec![None; xs.len()]));
            }
            let range = max - min;
            let (values, validity) = if range == 0.0 {
                xs.map_packed_f64(|_| 0.0)
            } else {
                xs.map_packed_f64(|v| (v - min) / range)
            };
            Column::from_packed_floats(out_name, values, validity)
        }
        NormKind::ZScore => {
            let n = xs.present_count();
            if n == 0 {
                return Ok(Column::from_floats(out_name, vec![None; xs.len()]));
            }
            let n = n as f64;
            let mean = xs.fold_present(0.0f64, |s, v| s + v) / n;
            let var = xs.fold_present(0.0f64, |acc, v| acc + (v - mean).powi(2)) / n;
            let std = var.sqrt();
            let (values, validity) = if std == 0.0 {
                xs.map_packed_f64(|_| 0.0)
            } else {
                xs.map_packed_f64(|v| (v - mean) / std)
            };
            Column::from_packed_floats(out_name, values, validity)
        }
    })
}

/// Bucketize a numeric column against ascending boundaries.
///
/// A value `v` maps to the index of the first boundary `b` with `v < b`;
/// values ≥ the last boundary get `boundaries.len()`. This matches
/// `pandas.cut` with right-open bins plus overflow bins at both ends.
pub fn bucketize(col: &Column, boundaries: &[f64], out_name: &str) -> Result<Column> {
    if boundaries.is_empty() {
        return Err(FrameError::InvalidArgument(
            "bucketize requires at least one boundary".into(),
        ));
    }
    if boundaries.windows(2).any(|w| w[0] >= w[1]) {
        return Err(FrameError::InvalidArgument(
            "bucketize boundaries must be strictly ascending".into(),
        ));
    }
    let xs = col.numeric_view()?;
    let (values, validity) = xs.map_packed_i64(|v| {
        boundaries
            .iter()
            .position(|&b| v < b)
            .unwrap_or(boundaries.len()) as i64
    });
    Ok(Column::from_packed_ints(out_name, values, validity))
}

/// Clamp a numeric column into `[lo, hi]`.
pub fn clip(col: &Column, lo: f64, hi: f64, out_name: &str) -> Result<Column> {
    if lo > hi {
        return Err(FrameError::InvalidArgument(format!(
            "clip lower bound {lo} exceeds upper bound {hi}"
        )));
    }
    let xs = col.numeric_view()?;
    let (values, validity) = xs.map_packed_f64(|v| v.clamp(lo, hi));
    Ok(Column::from_packed_floats(out_name, values, validity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn minmax_maps_to_unit_interval() {
        let c = Column::from_f64("x", vec![10.0, 20.0, 30.0]);
        let n = normalize(&c, NormKind::MinMax, "x_norm").unwrap();
        assert_eq!(n.get(0), Value::Float(0.0));
        assert_eq!(n.get(1), Value::Float(0.5));
        assert_eq!(n.get(2), Value::Float(1.0));
        assert_eq!(n.name(), "x_norm");
    }

    #[test]
    fn minmax_constant_column_is_zero() {
        let c = Column::from_f64("x", vec![5.0, 5.0]);
        let n = normalize(&c, NormKind::MinMax, "n").unwrap();
        assert_eq!(n.get(0), Value::Float(0.0));
    }

    #[test]
    fn zscore_has_zero_mean() {
        let c = Column::from_f64("x", vec![1.0, 2.0, 3.0, 4.0]);
        let n = normalize(&c, NormKind::ZScore, "n").unwrap();
        let sum: f64 = n.to_f64().into_iter().flatten().sum();
        assert!(sum.abs() < 1e-12);
    }

    #[test]
    fn normalize_preserves_nulls() {
        let c = Column::from_floats("x", vec![Some(1.0), None, Some(3.0)]);
        let n = normalize(&c, NormKind::MinMax, "n").unwrap();
        assert!(n.is_null(1));
        assert_eq!(n.null_count(), 1);
    }

    #[test]
    fn normalize_all_null() {
        let c = Column::from_floats("x", vec![None, None]);
        let n = normalize(&c, NormKind::ZScore, "n").unwrap();
        assert_eq!(n.null_count(), 2);
    }

    #[test]
    fn bucketize_age_example() {
        // The paper's F1: bucketized age with the 21-year-old threshold.
        let c = Column::from_i64("Age", vec![18, 21, 35, 70]);
        let b = bucketize(&c, &[21.0, 25.0, 45.0, 65.0], "Bucketized_Age").unwrap();
        assert_eq!(b.get(0), Value::Int(0)); // under 21
        assert_eq!(b.get(1), Value::Int(1)); // [21, 25)
        assert_eq!(b.get(2), Value::Int(2)); // [25, 45)
        assert_eq!(b.get(3), Value::Int(4)); // ≥ 65
    }

    #[test]
    fn bucketize_rejects_bad_boundaries() {
        let c = Column::from_i64("x", vec![1]);
        assert!(bucketize(&c, &[], "b").is_err());
        assert!(bucketize(&c, &[2.0, 1.0], "b").is_err());
    }

    #[test]
    fn reciprocal_zero_is_null() {
        let c = Column::from_f64("x", vec![2.0, 0.0]);
        let r = unary_map(&c, UnaryFn::Reciprocal, "r").unwrap();
        assert_eq!(r.get(0), Value::Float(0.5));
        assert!(r.is_null(1));
    }

    #[test]
    fn log_is_total() {
        let c = Column::from_f64("x", vec![-10.0, 0.0, 10.0]);
        let r = unary_map(&c, UnaryFn::Log1pAbs, "r").unwrap();
        assert_eq!(r.null_count(), 0);
        assert_eq!(r.get(1), Value::Float(0.0));
    }

    #[test]
    fn clip_clamps() {
        let c = Column::from_f64("x", vec![-5.0, 0.5, 99.0]);
        let r = clip(&c, 0.0, 1.0, "r").unwrap();
        assert_eq!(r.get(0), Value::Float(0.0));
        assert_eq!(r.get(1), Value::Float(0.5));
        assert_eq!(r.get(2), Value::Float(1.0));
        assert!(clip(&c, 2.0, 1.0, "r").is_err());
    }

    #[test]
    fn unary_rejects_string_columns() {
        let c = Column::from_str_slice("s", &["a"]);
        assert!(unary_map(&c, UnaryFn::Abs, "r").is_err());
    }
}
