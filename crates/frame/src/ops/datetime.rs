//! Date splitting: parse `YYYY-MM-DD`-style strings and extract parts.
//!
//! The unary operator family includes "date splitting"; this module provides
//! the executable transform. Only the Gregorian calendar arithmetic needed
//! for year/month/day/weekday extraction is implemented — no external crate.

use crate::column::Column;
use crate::error::{FrameError, Result};

/// Parts extractable from a date column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatePart {
    /// Calendar year.
    Year,
    /// Month 1–12.
    Month,
    /// Day of month 1–31.
    Day,
    /// Weekday 0=Monday … 6=Sunday (matching `datetime.weekday()`).
    Weekday,
}

impl DatePart {
    /// Name used in generated feature names (`date_year`, …).
    pub fn name(self) -> &'static str {
        match self {
            DatePart::Year => "year",
            DatePart::Month => "month",
            DatePart::Day => "day",
            DatePart::Weekday => "weekday",
        }
    }

    /// All parts the date-split transform produces.
    pub fn all() -> [DatePart; 4] {
        [
            DatePart::Year,
            DatePart::Month,
            DatePart::Day,
            DatePart::Weekday,
        ]
    }
}

/// A parsed calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Date {
    /// Calendar year (e.g. 2024).
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31 (validated against the month).
    pub day: u32,
}

impl Date {
    /// Parse `YYYY-MM-DD` or `YYYY/MM/DD`.
    pub fn parse(text: &str) -> Option<Date> {
        let text = text.trim();
        let sep = if text.contains('-') { '-' } else { '/' };
        let mut parts = text.splitn(3, sep);
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u32 = parts.next()?.parse().ok()?;
        let day: u32 = parts.next()?.parse().ok()?;
        let d = Date { year, month, day };
        d.is_valid().then_some(d)
    }

    /// True for a representable Gregorian date.
    pub fn is_valid(&self) -> bool {
        self.month >= 1 && self.month <= 12 && self.day >= 1 && self.day <= self.days_in_month()
    }

    /// Days in this date's month.
    pub fn days_in_month(&self) -> u32 {
        match self.month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if is_leap(self.year) {
                    29
                } else {
                    28
                }
            }
            _ => 0,
        }
    }

    /// Weekday with 0=Monday … 6=Sunday, via Zeller's congruence.
    pub fn weekday(&self) -> u32 {
        let (mut y, mut m) = (self.year, self.month as i32);
        if m < 3 {
            m += 12;
            y -= 1;
        }
        let k = y.rem_euclid(100);
        let j = y.div_euclid(100);
        // Zeller: 0=Saturday, 1=Sunday, 2=Monday, ...
        let h = (self.day as i32 + (13 * (m + 1)) / 5 + k + k / 4 + j / 4 + 5 * j).rem_euclid(7);
        // Convert to 0=Monday.
        ((h + 5) % 7) as u32
    }

    /// Extract one part.
    pub fn part(&self, p: DatePart) -> i64 {
        match p {
            DatePart::Year => self.year as i64,
            DatePart::Month => self.month as i64,
            DatePart::Day => self.day as i64,
            DatePart::Weekday => self.weekday() as i64,
        }
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Extract one date part from a string date column. Unparseable cells
/// become null.
pub fn date_part(col: &Column, part: DatePart, out_name: &str) -> Result<Column> {
    if col.is_numeric() {
        return Err(FrameError::TypeMismatch {
            column: col.name().to_string(),
            expected: "a string date column",
        });
    }
    let keys = col.keys_view();
    Ok(Column::from_int_iter(
        out_name,
        keys.iter()
            .map(|k| k.and_then(Date::parse).map(|d| d.part(part))),
    ))
}

/// Heuristic: does this string column look like dates? (≥80 % of non-null
/// cells parse.) Used by the operator selector's context detection.
pub fn looks_like_dates(col: &Column) -> bool {
    if col.is_numeric() {
        return false;
    }
    let keys = col.keys_view();
    let (mut non_null, mut parsed) = (0usize, 0usize);
    for key in keys.iter().flatten() {
        non_null += 1;
        if Date::parse(key).is_some() {
            parsed += 1;
        }
    }
    if non_null == 0 {
        return false;
    }
    parsed * 5 >= non_null * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn parse_iso_and_slash() {
        assert_eq!(
            Date::parse("2024-02-29"),
            Some(Date {
                year: 2024,
                month: 2,
                day: 29
            })
        );
        assert!(Date::parse("2023-02-29").is_none()); // not a leap year
        assert_eq!(
            Date::parse("1999/12/31"),
            Some(Date {
                year: 1999,
                month: 12,
                day: 31
            })
        );
        assert!(Date::parse("hello").is_none());
        assert!(Date::parse("2024-13-01").is_none());
    }

    #[test]
    fn weekday_known_dates() {
        // 2024-01-01 was a Monday; 2000-01-01 a Saturday; 2026-07-05 a Sunday.
        assert_eq!(Date::parse("2024-01-01").unwrap().weekday(), 0);
        assert_eq!(Date::parse("2000-01-01").unwrap().weekday(), 5);
        assert_eq!(Date::parse("2026-07-05").unwrap().weekday(), 6);
    }

    #[test]
    fn date_part_extraction() {
        let c = Column::from_str_slice("d", &["2021-07-15", "bad", "1980-01-02"]);
        let y = date_part(&c, DatePart::Year, "d_year").unwrap();
        assert_eq!(y.get(0), Value::Int(2021));
        assert!(y.is_null(1));
        assert_eq!(y.get(2), Value::Int(1980));
        let m = date_part(&c, DatePart::Month, "d_month").unwrap();
        assert_eq!(m.get(0), Value::Int(7));
    }

    #[test]
    fn date_part_rejects_numeric() {
        let c = Column::from_i64("x", vec![1]);
        assert!(date_part(&c, DatePart::Year, "y").is_err());
    }

    #[test]
    fn looks_like_dates_threshold() {
        let mostly = Column::from_str_slice(
            "d",
            &[
                "2020-01-01",
                "2020-01-02",
                "oops",
                "2020-01-04",
                "2020-01-05",
            ],
        );
        assert!(looks_like_dates(&mostly));
        let rarely = Column::from_str_slice("d", &["a", "b", "2020-01-01"]);
        assert!(!looks_like_dates(&rarely));
        let numeric = Column::from_i64("x", vec![20200101]);
        assert!(!looks_like_dates(&numeric));
    }

    #[test]
    fn days_in_month_edges() {
        assert_eq!(
            Date {
                year: 1900,
                month: 2,
                day: 1
            }
            .days_in_month(),
            28 // 1900 is not a leap year (divisible by 100, not 400)
        );
        assert_eq!(
            Date {
                year: 2000,
                month: 2,
                day: 1
            }
            .days_in_month(),
            29
        );
    }
}
