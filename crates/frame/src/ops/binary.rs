//! Binary arithmetic between two numeric columns: `+`, `-`, `×`, `÷`.

use crate::column::Column;
use crate::error::{FrameError, Result};

/// The four basic arithmetic operators the paper's binary family covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `a + b`.
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// `a / b`. With `safe_division`, division by zero yields null; without
    /// it (CAAFE's observed failure mode on Diabetes) it yields `NaN`,
    /// which [`Column::from_floats`] also normalizes to null — the *unsafe*
    /// variant instead poisons downstream sums by emitting huge sentinels,
    /// see [`binary_op_unsafe`].
    Div,
}

impl BinaryOp {
    /// Evaluate safely: division by zero returns `None`.
    pub fn apply(self, a: f64, b: f64) -> Option<f64> {
        let v = match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    return None;
                }
                a / b
            }
        };
        v.is_finite().then_some(v)
    }

    /// Symbol for naming generated features (`A_plus_B`, …).
    pub fn token(self) -> &'static str {
        match self {
            BinaryOp::Add => "plus",
            BinaryOp::Sub => "minus",
            BinaryOp::Mul => "times",
            BinaryOp::Div => "div",
        }
    }

    /// Mathematical symbol for display.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }

    /// All four operators, in the paper's listing order.
    pub fn all() -> [BinaryOp; 4] {
        [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div]
    }

    /// True for operators where argument order matters.
    pub fn is_ordered(self) -> bool {
        matches!(self, BinaryOp::Sub | BinaryOp::Div)
    }
}

/// Apply a binary operator elementwise across two numeric columns.
/// Any null operand yields a null result; division by zero yields null.
pub fn binary_op(a: &Column, b: &Column, op: BinaryOp, out_name: &str) -> Result<Column> {
    if a.len() != b.len() {
        return Err(FrameError::LengthMismatch {
            column: b.name().to_string(),
            expected: a.len(),
            actual: b.len(),
        });
    }
    let xs = a.numeric_view()?;
    let ys = b.numeric_view()?;
    Ok(Column::from_float_iter(
        out_name,
        xs.iter().zip(ys.iter()).map(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => op.apply(x, y),
            _ => None,
        }),
    ))
}

/// The *unsafe* division CAAFE-style code generation produces: division by
/// zero is not guarded, so the result carries an extreme sentinel value that
/// wrecks downstream model training (reproducing the paper's report that
/// "CAAFE failed on the Diabetes dataset … divide-by-zero transformations").
pub fn binary_op_unsafe(a: &Column, b: &Column, op: BinaryOp, out_name: &str) -> Result<Column> {
    if op != BinaryOp::Div {
        return binary_op(a, b, op, out_name);
    }
    if a.len() != b.len() {
        return Err(FrameError::LengthMismatch {
            column: b.name().to_string(),
            expected: a.len(),
            actual: b.len(),
        });
    }
    let xs = a.numeric_view()?;
    let ys = b.numeric_view()?;
    let data = xs.iter().zip(ys.iter()).map(|(x, y)| match (x, y) {
        (Some(x), Some(y)) => {
            if y == 0.0 {
                // Unguarded pandas division: x/0 → ±inf (0/0 → NaN,
                // which column storage normalizes to null). The infinity
                // poisons downstream model training, reproducing the
                // paper's CAAFE-on-Diabetes failure.
                if x == 0.0 {
                    None
                } else if x > 0.0 {
                    Some(f64::INFINITY)
                } else {
                    Some(f64::NEG_INFINITY)
                }
            } else {
                Some(x / y)
            }
        }
        _ => None,
    });
    Ok(Column::from_float_iter(out_name, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn cols() -> (Column, Column) {
        (
            Column::from_f64("a", vec![6.0, 8.0, 3.0]),
            Column::from_f64("b", vec![2.0, 0.0, -1.0]),
        )
    }

    #[test]
    fn add_sub_mul() {
        let (a, b) = cols();
        assert_eq!(
            binary_op(&a, &b, BinaryOp::Add, "s").unwrap().get(0),
            Value::Float(8.0)
        );
        assert_eq!(
            binary_op(&a, &b, BinaryOp::Sub, "s").unwrap().get(2),
            Value::Float(4.0)
        );
        assert_eq!(
            binary_op(&a, &b, BinaryOp::Mul, "s").unwrap().get(2),
            Value::Float(-3.0)
        );
    }

    #[test]
    fn safe_division_nulls_on_zero() {
        let (a, b) = cols();
        let d = binary_op(&a, &b, BinaryOp::Div, "d").unwrap();
        assert_eq!(d.get(0), Value::Float(3.0));
        assert!(d.is_null(1));
    }

    #[test]
    fn unsafe_division_poisons_on_zero() {
        let (a, b) = cols();
        let d = binary_op_unsafe(&a, &b, BinaryOp::Div, "d").unwrap();
        assert_eq!(d.get(1), Value::Float(f64::INFINITY));
    }

    #[test]
    fn null_operand_propagates() {
        let a = Column::from_floats("a", vec![Some(1.0), None]);
        let b = Column::from_f64("b", vec![1.0, 1.0]);
        let s = binary_op(&a, &b, BinaryOp::Add, "s").unwrap();
        assert!(s.is_null(1));
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = Column::from_f64("a", vec![1.0]);
        let b = Column::from_f64("b", vec![1.0, 2.0]);
        assert!(binary_op(&a, &b, BinaryOp::Add, "s").is_err());
    }

    #[test]
    fn ordered_flags() {
        assert!(BinaryOp::Sub.is_ordered());
        assert!(BinaryOp::Div.is_ordered());
        assert!(!BinaryOp::Add.is_ordered());
        assert!(!BinaryOp::Mul.is_ordered());
    }

    #[test]
    fn tokens_and_symbols() {
        assert_eq!(BinaryOp::Div.token(), "div");
        assert_eq!(BinaryOp::Mul.symbol(), "*");
        assert_eq!(BinaryOp::all().len(), 4);
    }
}
