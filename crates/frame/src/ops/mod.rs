//! Column-level operations: the execution vocabulary for generated
//! transformation functions.
//!
//! Each operation takes borrowed inputs and produces a fresh [`crate::Column`]
//! (or several, for dummies), never mutating the source frame — the pipeline
//! decides what to attach.

pub mod binary;
pub mod datetime;
pub mod encode;
pub mod groupby;
pub mod unary;

pub use binary::{binary_op, binary_op_unsafe, BinaryOp};
pub use datetime::{date_part, DatePart};
pub use encode::{frequency_encode, get_dummies, one_hot_limit};
pub use groupby::{groupby_transform, AggFunc};
pub use unary::{bucketize, clip, normalize, unary_map, NormKind, UnaryFn};
