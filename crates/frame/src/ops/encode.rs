//! Categorical encodings: one-hot dummies and frequency encoding.

use crate::column::Column;
use crate::error::{FrameError, Result};

/// Default cap on dummy expansion; columns with more distinct values than
/// this are considered high-cardinality (the paper's feature-evaluation
/// step drops dummies derived from such columns).
pub fn one_hot_limit() -> usize {
    20
}

/// Pandas-style `get_dummies`: one 0/1 column per distinct non-null value,
/// named `{col}_{value}`, in sorted value order. Null rows are 0 in every
/// dummy (pandas default `dummy_na=False`).
///
/// `max_cardinality` guards against exploding a high-cardinality column;
/// pass [`one_hot_limit()`] for the paper's default behaviour.
pub fn get_dummies(col: &Column, max_cardinality: usize) -> Result<Vec<Column>> {
    let card = col.cardinality();
    if card == 0 {
        return Err(FrameError::InvalidArgument(format!(
            "get_dummies on all-null column {:?}",
            col.name()
        )));
    }
    if card > max_cardinality {
        return Err(FrameError::InvalidArgument(format!(
            "get_dummies on {:?} would create {card} columns (limit {max_cardinality})",
            col.name()
        )));
    }
    // Sorted value order is the naming contract (pandas `get_dummies`).
    let values: Vec<String> = col.value_counts().into_keys().collect();
    let mut out = Vec::with_capacity(values.len());
    if let Some((codes, validity, dict)) = col.dict_parts() {
        // Dictionary fast path: one code comparison per row, no strings.
        for v in values {
            let target = dict.code_of(&v);
            out.push(Column::from_int_iter(
                format!("{}_{}", col.name(), sanitize(&v)),
                codes
                    .iter()
                    .zip(validity.iter())
                    .map(|(&c, ok)| Some(i64::from(ok && Some(c) == target))),
            ));
        }
        return Ok(out);
    }
    let keys = col.keys_view();
    for v in values {
        out.push(Column::from_int_iter(
            format!("{}_{}", col.name(), sanitize(&v)),
            keys.iter().map(|k| Some(i64::from(k == Some(v.as_str())))),
        ));
    }
    Ok(out)
}

/// Frequency encoding: each value maps to its occurrence fraction among
/// non-null cells. A common alternative to dummies for high-cardinality
/// categoricals.
pub fn frequency_encode(col: &Column, out_name: &str) -> Result<Column> {
    if let Some((codes, validity, dict)) = col.dict_parts() {
        // Dictionary fast path: count per code, then one indexed read per row.
        let mut per_code = vec![0usize; dict.len()];
        let mut total = 0usize;
        for (i, &c) in codes.iter().enumerate() {
            if validity.is_valid(i) {
                per_code[c as usize] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return Err(FrameError::InvalidArgument(format!(
                "frequency_encode on all-null column {:?}",
                col.name()
            )));
        }
        return Ok(Column::from_float_iter(
            out_name,
            codes
                .iter()
                .zip(validity.iter())
                .map(|(&c, ok)| ok.then(|| per_code[c as usize] as f64 / total as f64)),
        ));
    }
    let keys = col.keys_view();
    let counts = col.value_counts();
    let total: usize = counts.values().sum();
    if total == 0 {
        return Err(FrameError::InvalidArgument(format!(
            "frequency_encode on all-null column {:?}",
            col.name()
        )));
    }
    Ok(Column::from_float_iter(
        out_name,
        keys.iter()
            .map(|k| k.map(|key| counts[key] as f64 / total as f64)),
    ))
}

/// Make a categorical value safe for use inside a column name.
fn sanitize(value: &str) -> String {
    value
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn dummies_basic() {
        let c = Column::from_str_slice("sex", &["M", "F", "M"]);
        let d = get_dummies(&c, 10).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name(), "sex_F");
        assert_eq!(d[1].name(), "sex_M");
        assert_eq!(d[1].get(0), Value::Int(1));
        assert_eq!(d[1].get(1), Value::Int(0));
    }

    #[test]
    fn dummies_null_rows_all_zero() {
        let c = Column::from_strs("g", vec![Some("a".into()), None]);
        let d = get_dummies(&c, 10).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].get(1), Value::Int(0));
    }

    #[test]
    fn dummies_cardinality_guard() {
        let vals: Vec<String> = (0..25).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        let c = Column::from_str_slice("id", &refs);
        assert!(get_dummies(&c, one_hot_limit()).is_err());
    }

    #[test]
    fn dummies_all_null_rejected() {
        let c = Column::from_strs("g", vec![None, None]);
        assert!(get_dummies(&c, 10).is_err());
    }

    #[test]
    fn dummy_names_sanitized() {
        let c = Column::from_str_slice("city", &["San Francisco"]);
        let d = get_dummies(&c, 10).unwrap();
        assert_eq!(d[0].name(), "city_San_Francisco");
    }

    #[test]
    fn frequency_encoding_fractions() {
        let c = Column::from_str_slice("g", &["a", "a", "b", "a"]);
        let f = frequency_encode(&c, "g_freq").unwrap();
        assert_eq!(f.get(0), Value::Float(0.75));
        assert_eq!(f.get(2), Value::Float(0.25));
    }

    #[test]
    fn frequency_encoding_ignores_nulls_in_denominator() {
        let c = Column::from_strs("g", vec![Some("a".into()), None, Some("a".into())]);
        let f = frequency_encode(&c, "f").unwrap();
        assert_eq!(f.get(0), Value::Float(1.0));
        assert!(f.is_null(1));
    }

    #[test]
    fn dummies_work_on_integer_codes() {
        let c = Column::from_i64("code", vec![2, 7, 2]);
        let d = get_dummies(&c, 10).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name(), "code_2");
    }
}
