//! The high-order *GroupbyThenAgg* operator:
//! `df.groupby(group_cols)[agg_col].transform(func)`.

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use crate::index::StableMap;
use crate::view::KeysView;

/// Aggregation functions the FM may choose for the high-order operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Arithmetic mean of non-null group members.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Count of non-null members.
    Count,
    /// Population standard deviation.
    Std,
    /// Median (lower median for even-sized groups, matching `statistics`).
    Median,
}

impl AggFunc {
    /// Name used in generated feature names and parsed from FM output.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Mean => "mean",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Std => "std",
            AggFunc::Median => "median",
        }
    }

    /// Parse from the FM's textual output (case-insensitive; accepts the
    /// aliases real models emit, e.g. "average" for mean).
    pub fn parse(text: &str) -> Option<AggFunc> {
        match text.trim().to_ascii_lowercase().as_str() {
            "mean" | "average" | "avg" => Some(AggFunc::Mean),
            "min" | "minimum" => Some(AggFunc::Min),
            "max" | "maximum" => Some(AggFunc::Max),
            "sum" | "total" => Some(AggFunc::Sum),
            "count" | "size" => Some(AggFunc::Count),
            "std" | "stddev" | "standard deviation" => Some(AggFunc::Std),
            "median" => Some(AggFunc::Median),
            _ => None,
        }
    }

    /// Evaluate over a group's non-null values.
    pub fn evaluate(self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return if self == AggFunc::Count {
                Some(0.0)
            } else {
                None
            };
        }
        let n = values.len() as f64;
        let v = match self {
            AggFunc::Mean => values.iter().sum::<f64>() / n,
            AggFunc::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            AggFunc::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggFunc::Sum => values.iter().sum(),
            AggFunc::Count => n,
            AggFunc::Std => {
                let mean = values.iter().sum::<f64>() / n;
                (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt()
            }
            AggFunc::Median => {
                let mut sorted = values.to_vec();
                sorted.sort_by(|a, b| a.total_cmp(b));
                sorted[(sorted.len() - 1) / 2]
            }
        };
        v.is_finite().then_some(v)
    }

    /// Every aggregation function, in a stable order.
    pub fn all() -> [AggFunc; 7] {
        [
            AggFunc::Mean,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Std,
            AggFunc::Median,
        ]
    }
}

/// Compute `df.groupby(group_cols)[agg_col].transform(func)` — a new column
/// aligned row-for-row with `df`, where each row carries its group's
/// aggregate. Rows with a null group key or (for non-count aggregates) an
/// all-null group get null.
///
/// Grouping assigns each row a dense group slot in one pass: a single
/// dictionary-encoded group column maps code → slot through a plain vector
/// (no hashing at all); the general composite-key path probes a
/// [`StableMap`] with a reused key buffer, allocating only on first sight
/// of a group. Output is a per-row lookup of its own slot's aggregate, so
/// slot numbering never leaks into results — determinism holds by
/// construction.
pub fn groupby_transform(
    df: &DataFrame,
    group_cols: &[&str],
    agg_col: &str,
    func: AggFunc,
    out_name: &str,
) -> Result<Column> {
    if group_cols.is_empty() {
        return Err(FrameError::InvalidArgument(
            "groupby requires at least one group column".into(),
        ));
    }
    let n = df.n_rows();
    const UNSEEN: u32 = u32::MAX;

    // Per-row dense group slot; None if any key component is null.
    let mut n_groups: usize = 0;
    let row_slots: Vec<Option<u32>> = if let [only] = group_cols {
        if let Some((codes, validity, dict)) = df.column(only)?.dict_parts() {
            // Fast path: group codes are already dense dictionary codes.
            let mut slot_for_code = vec![UNSEEN; dict.len()];
            codes
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    validity.is_valid(i).then(|| {
                        let slot = &mut slot_for_code[c as usize];
                        if *slot == UNSEEN {
                            *slot = n_groups as u32;
                            n_groups += 1;
                        }
                        *slot
                    })
                })
                .collect()
        } else {
            let view = df.column(only)?.keys_view();
            slots_from_views(&[view], n, &mut n_groups)
        }
    } else {
        let views: Vec<KeysView<'_>> = group_cols
            .iter()
            .map(|&g| df.column(g).map(|c| c.keys_view()))
            .collect::<Result<_>>()?;
        slots_from_views(&views, n, &mut n_groups)
    };

    // One pass to bucket the aggregation values, one to aggregate.
    let values = df.column(agg_col)?.numeric_view()?;
    let mut group_values: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
    for (i, slot) in row_slots.iter().enumerate() {
        if let Some(s) = slot {
            if let Some(v) = values.get(i) {
                group_values[*s as usize].push(v);
            }
        }
    }
    let aggregates: Vec<Option<f64>> = group_values.iter().map(|vs| func.evaluate(vs)).collect();

    let data = row_slots
        .iter()
        .map(|slot| slot.and_then(|s| aggregates[s as usize]))
        .collect();
    Ok(Column::from_floats(out_name, data))
}

/// Assign dense group slots from composite row keys (general path).
fn slots_from_views(views: &[KeysView<'_>], n: usize, n_groups: &mut usize) -> Vec<Option<u32>> {
    let mut slot_of: StableMap<String, u32> = StableMap::new();
    let mut row_slots = Vec::with_capacity(n);
    let mut buf = String::new();
    'row: for i in 0..n {
        buf.clear();
        for view in views {
            match view.get(i) {
                Some(part) => {
                    buf.push_str(part);
                    buf.push('\u{1f}'); // unit separator: unambiguous join
                }
                None => {
                    row_slots.push(None);
                    continue 'row;
                }
            }
        }
        let slot = match slot_of.get(buf.as_str()) {
            Some(&s) => s,
            None => {
                let s = slot_of.len() as u32;
                slot_of.insert(buf.clone(), s);
                s
            }
        };
        row_slots.push(Some(slot));
    }
    *n_groups = slot_of.len();
    row_slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn claims_frame() -> DataFrame {
        // Mirrors the paper's F3: claim probability per car model.
        DataFrame::from_columns(vec![
            Column::from_str_slice("model", &["Civic", "Corolla", "Civic", "X5"]),
            Column::from_f64("claim", vec![1.0, 0.0, 0.0, 0.0]),
        ])
        .unwrap()
    }

    #[test]
    fn groupby_mean_matches_paper_example() {
        let df = claims_frame();
        let c = groupby_transform(&df, &["model"], "claim", AggFunc::Mean, "rate").unwrap();
        assert_eq!(c.get(0), Value::Float(0.5)); // Civic: (1+0)/2
        assert_eq!(c.get(1), Value::Float(0.0));
        assert_eq!(c.get(2), Value::Float(0.5));
        assert_eq!(c.get(3), Value::Float(0.0));
    }

    #[test]
    fn multi_column_groupby_key_is_unambiguous() {
        // ("ab","c") must not collide with ("a","bc").
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("g1", &["ab", "a"]),
            Column::from_str_slice("g2", &["c", "bc"]),
            Column::from_f64("v", vec![1.0, 5.0]),
        ])
        .unwrap();
        let c = groupby_transform(&df, &["g1", "g2"], "v", AggFunc::Mean, "m").unwrap();
        assert_eq!(c.get(0), Value::Float(1.0));
        assert_eq!(c.get(1), Value::Float(5.0));
    }

    #[test]
    fn null_group_key_yields_null() {
        let df = DataFrame::from_columns(vec![
            Column::from_strs("g", vec![Some("a".into()), None]),
            Column::from_f64("v", vec![1.0, 2.0]),
        ])
        .unwrap();
        let c = groupby_transform(&df, &["g"], "v", AggFunc::Sum, "s").unwrap();
        assert_eq!(c.get(0), Value::Float(1.0));
        assert!(c.is_null(1));
    }

    #[test]
    fn count_handles_all_null_group() {
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("g", &["a", "a"]),
            Column::from_floats("v", vec![None, None]),
        ])
        .unwrap();
        let c = groupby_transform(&df, &["g"], "v", AggFunc::Count, "c").unwrap();
        assert_eq!(c.get(0), Value::Float(0.0));
        let m = groupby_transform(&df, &["g"], "v", AggFunc::Mean, "m").unwrap();
        assert!(m.is_null(0));
    }

    #[test]
    fn output_is_stable_across_runs_and_group_orderings() {
        // Regression for the HashMap->BTreeMap migration: group aggregation
        // state must not leak nondeterministic iteration order into output.
        // Many groups (beyond any small-map special case), every AggFunc,
        // repeated runs, and a permuted-row frame that contains the same
        // groups — per-row output must be a pure function of the row's key.
        let n = 64;
        let groups: Vec<String> = (0..n).map(|i| format!("g{:02}", i % 16)).collect();
        let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        let values: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("g", &refs),
            Column::from_f64("v", values.clone()),
        ])
        .unwrap();
        for func in AggFunc::all() {
            let a = groupby_transform(&df, &["g"], "v", func, "out").unwrap();
            let b = groupby_transform(&df, &["g"], "v", func, "out").unwrap();
            for i in 0..n {
                assert_eq!(a.get(i), b.get(i), "{} row {i} differs", func.name());
            }
        }
        // Reversed row order: each row still gets its own group's aggregate.
        let rev_refs: Vec<&str> = refs.iter().rev().copied().collect();
        let rev_values: Vec<f64> = values.iter().rev().copied().collect();
        let rev = DataFrame::from_columns(vec![
            Column::from_str_slice("g", &rev_refs),
            Column::from_f64("v", rev_values),
        ])
        .unwrap();
        let fwd = groupby_transform(&df, &["g"], "v", AggFunc::Sum, "out").unwrap();
        let bwd = groupby_transform(&rev, &["g"], "v", AggFunc::Sum, "out").unwrap();
        for i in 0..n {
            assert_eq!(
                fwd.get(i),
                bwd.get(n - 1 - i),
                "group aggregate must not depend on row discovery order"
            );
        }
    }

    #[test]
    fn std_and_median() {
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("g", &["a", "a", "a", "a"]),
            Column::from_f64("v", vec![2.0, 4.0, 4.0, 6.0]),
        ])
        .unwrap();
        let s = groupby_transform(&df, &["g"], "v", AggFunc::Std, "s").unwrap();
        let got = s.to_f64()[0].unwrap();
        assert!((got - (2.0f64).sqrt()).abs() < 1e-12);
        let m = groupby_transform(&df, &["g"], "v", AggFunc::Median, "m").unwrap();
        assert_eq!(m.get(0), Value::Float(4.0));
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(AggFunc::parse("Average"), Some(AggFunc::Mean));
        assert_eq!(AggFunc::parse(" max "), Some(AggFunc::Max));
        assert_eq!(AggFunc::parse("standard deviation"), Some(AggFunc::Std));
        assert_eq!(AggFunc::parse("mode"), None);
    }

    #[test]
    fn empty_group_cols_rejected() {
        let df = claims_frame();
        assert!(groupby_transform(&df, &[], "claim", AggFunc::Mean, "x").is_err());
    }

    #[test]
    fn integer_group_keys_work() {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("g", vec![1, 2, 1]),
            Column::from_f64("v", vec![10.0, 20.0, 30.0]),
        ])
        .unwrap();
        let c = groupby_transform(&df, &["g"], "v", AggFunc::Max, "m").unwrap();
        assert_eq!(c.get(0), Value::Float(30.0));
        assert_eq!(c.get(1), Value::Float(20.0));
    }
}
