//! Zero-copy column views.
//!
//! The v1 ops materialized every input as a fresh `Vec<Option<f64>>` (or
//! `Vec<Option<String>>`) before touching a single row. In the three-stage
//! `realize_batch` that meant each parallel pure transform cloned whole
//! columns out of the shared frame. The v2 views borrow the column's value
//! buffer and null bitmap directly: [`NumericView`] answers `get(i) →
//! Option<f64>` by reading the buffers in place, and [`KeysView`] exposes
//! categorical cells as `&str` borrowed from the interned dictionary.
//!
//! Only non-`Str` numeric renderings (`to_keys` on an `Int` column, say)
//! still allocate — those paths fall back to an owned buffer inside the
//! view, invisible to callers.

use std::slice;

use crate::bitmap::{BitIter, NullBitmap};
use crate::dict::Dictionary;

/// A borrowed numeric read-view over an `Int`, `Float`, or `Bool` column.
#[derive(Debug, Clone, Copy)]
pub enum NumericView<'a> {
    /// Borrowed int buffer + validity.
    Int {
        values: &'a [i64],
        validity: &'a NullBitmap,
    },
    /// Borrowed float buffer + validity (stored floats are never NaN).
    Float {
        values: &'a [f64],
        validity: &'a NullBitmap,
    },
    /// Borrowed bool buffer + validity.
    Bool {
        values: &'a [bool],
        validity: &'a NullBitmap,
    },
}

impl NumericView<'_> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            NumericView::Int { values, .. } => values.len(),
            NumericView::Float { values, .. } => values.len(),
            NumericView::Bool { values, .. } => values.len(),
        }
    }

    /// True if the view covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as `f64`, or `None` for a null.
    pub fn get(&self, i: usize) -> Option<f64> {
        match self {
            NumericView::Int { values, validity } => validity.is_valid(i).then(|| values[i] as f64),
            NumericView::Float { values, validity } => validity.is_valid(i).then(|| values[i]),
            NumericView::Bool { values, validity } => {
                validity
                    .is_valid(i)
                    .then(|| if values[i] { 1.0 } else { 0.0 })
            }
        }
    }

    /// Iterate rows as `Option<f64>` without materializing a buffer.
    ///
    /// The variant is matched once here, not per element: each arm zips a
    /// slice iterator with the bitmap's word-caching [`BitIter`], so the
    /// hot loop runs at buffer-scan speed with no per-row indexing.
    pub fn iter(&self) -> NumericIter<'_> {
        match *self {
            NumericView::Int { values, validity } => {
                NumericIter::Int(values.iter(), validity.iter())
            }
            NumericView::Float { values, validity } => {
                NumericIter::Float(values.iter(), validity.iter())
            }
            NumericView::Bool { values, validity } => {
                NumericIter::Bool(values.iter(), validity.iter())
            }
        }
    }

    /// Materialize (the v1 `numeric()` shape) for callers that need a vec.
    pub fn to_vec(&self) -> Vec<Option<f64>> {
        self.iter().collect()
    }

    /// Count of present (non-null) rows — a popcount over the bitmap.
    pub fn present_count(&self) -> usize {
        match self {
            NumericView::Int { validity, .. }
            | NumericView::Float { validity, .. }
            | NumericView::Bool { validity, .. } => validity.count_valid(),
        }
    }

    /// Fold over present values only, in row order. When the bitmap is
    /// all-valid (the overwhelmingly common case for transform inputs)
    /// this runs straight over the raw value slice — a vectorizable loop
    /// with no per-row validity logic and bit-identical accumulation,
    /// since the element order is unchanged. Otherwise it streams through
    /// the packed fold, skipping nulls.
    pub fn fold_present<B>(&self, init: B, mut f: impl FnMut(B, f64) -> B) -> B {
        match *self {
            NumericView::Float { values, validity } if validity.all_are_valid() => {
                values.iter().fold(init, |acc, &v| f(acc, v))
            }
            NumericView::Int { values, validity } if validity.all_are_valid() => {
                values.iter().fold(init, |acc, &v| f(acc, v as f64))
            }
            NumericView::Bool { values, validity } if validity.all_are_valid() => values
                .iter()
                .fold(init, |acc, &v| f(acc, if v { 1.0 } else { 0.0 })),
            _ => self.iter().fold(init, |acc, x| match x {
                Some(v) => f(acc, v),
                None => acc,
            }),
        }
    }

    /// Map a function over the packed value buffer, cloning the validity
    /// bitmap. This is the null-preserving transform fast path: the hot
    /// loop is a pure slice map the compiler can vectorize — no per-row
    /// validity logic — and null slots are re-zeroed afterwards (the
    /// storage invariant) by walking only the null bits. Callers whose
    /// function can *introduce* nulls stream through [`NumericView::iter`]
    /// instead.
    pub(crate) fn map_packed_f64(&self, f: impl Fn(f64) -> f64) -> (Vec<f64>, NullBitmap) {
        let (mut out, validity): (Vec<f64>, NullBitmap) = match *self {
            NumericView::Int { values, validity } => (
                values.iter().map(|&v| f(v as f64)).collect(),
                validity.clone(),
            ),
            NumericView::Float { values, validity } => {
                (values.iter().map(|&v| f(v)).collect(), validity.clone())
            }
            NumericView::Bool { values, validity } => (
                values
                    .iter()
                    .map(|&v| f(if v { 1.0 } else { 0.0 }))
                    .collect(),
                validity.clone(),
            ),
        };
        validity.for_each_null(|i| out[i] = 0.0);
        (out, validity)
    }

    /// Integer-output variant of [`NumericView::map_packed_f64`].
    pub(crate) fn map_packed_i64(&self, f: impl Fn(f64) -> i64) -> (Vec<i64>, NullBitmap) {
        let (mut out, validity): (Vec<i64>, NullBitmap) = match *self {
            NumericView::Int { values, validity } => (
                values.iter().map(|&v| f(v as f64)).collect(),
                validity.clone(),
            ),
            NumericView::Float { values, validity } => {
                (values.iter().map(|&v| f(v)).collect(), validity.clone())
            }
            NumericView::Bool { values, validity } => (
                values
                    .iter()
                    .map(|&v| f(if v { 1.0 } else { 0.0 }))
                    .collect(),
                validity.clone(),
            ),
        };
        validity.for_each_null(|i| out[i] = 0);
        (out, validity)
    }
}

/// Fused iterator behind [`NumericView::iter`]: slice iteration plus
/// packed validity bits. Internal iteration (`collect`, `for_each`, any
/// `fold`-based adapter) runs one monomorphic indexed loop per variant —
/// the enum is matched once, not per element.
#[derive(Debug, Clone)]
pub enum NumericIter<'a> {
    /// Int buffer walk.
    Int(slice::Iter<'a, i64>, BitIter<'a>),
    /// Float buffer walk.
    Float(slice::Iter<'a, f64>, BitIter<'a>),
    /// Bool buffer walk.
    Bool(slice::Iter<'a, bool>, BitIter<'a>),
}

/// Raw-parts fold: the values slice and validity words advance under a
/// single index, so the hot loop is shift/mask/convert with no iterator
/// state to thread between elements.
#[inline]
fn fold_packed<T: Copy, B, F>(
    values: slice::Iter<'_, T>,
    bits: BitIter<'_>,
    conv: impl Fn(T) -> f64,
    init: B,
    mut f: F,
) -> B
where
    F: FnMut(B, Option<f64>) -> B,
{
    let (words, mut idx, _) = bits.raw_parts();
    let mut acc = init;
    for &v in values {
        let ok = words[idx >> 6] & (1u64 << (idx & 63)) != 0;
        idx += 1;
        acc = f(acc, ok.then(|| conv(v)));
    }
    acc
}

impl Iterator for NumericIter<'_> {
    type Item = Option<f64>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            NumericIter::Int(v, b) => match (v.next(), b.next()) {
                (Some(&x), Some(ok)) => Some(ok.then_some(x as f64)),
                _ => None,
            },
            NumericIter::Float(v, b) => match (v.next(), b.next()) {
                (Some(&x), Some(ok)) => Some(ok.then_some(x)),
                _ => None,
            },
            NumericIter::Bool(v, b) => match (v.next(), b.next()) {
                (Some(&x), Some(ok)) => Some(ok.then_some(if x { 1.0 } else { 0.0 })),
                _ => None,
            },
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NumericIter::Int(v, _) => v.size_hint(),
            NumericIter::Float(v, _) => v.size_hint(),
            NumericIter::Bool(v, _) => v.size_hint(),
        }
    }

    #[inline]
    fn fold<B, F>(self, init: B, f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        match self {
            NumericIter::Int(v, b) => fold_packed(v, b, |x| x as f64, init, f),
            NumericIter::Float(v, b) => fold_packed(v, b, |x| x, init, f),
            NumericIter::Bool(v, b) => fold_packed(v, b, |x| if x { 1.0 } else { 0.0 }, init, f),
        }
    }
}

impl ExactSizeIterator for NumericIter<'_> {}

/// A categorical read-view: row → `Option<&str>`.
///
/// `Dict` columns borrow codes and book zero-copy; other dtypes render
/// into an owned buffer once at view construction.
#[derive(Debug)]
pub enum KeysView<'a> {
    /// Borrowed dictionary-encoded storage.
    Dict {
        codes: &'a [u32],
        validity: &'a NullBitmap,
        dict: &'a Dictionary,
    },
    /// Rendered fallback for numeric dtypes (allocates at construction).
    Owned(Vec<Option<String>>),
}

impl KeysView<'_> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            KeysView::Dict { codes, .. } => codes.len(),
            KeysView::Owned(v) => v.len(),
        }
    }

    /// True if the view covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as a borrowed key string, or `None` for a null.
    pub fn get(&self, i: usize) -> Option<&str> {
        match self {
            KeysView::Dict {
                codes,
                validity,
                dict,
            } => validity.is_valid(i).then(|| dict.get(codes[i])),
            KeysView::Owned(v) => v[i].as_deref(),
        }
    }

    /// Iterate rows as `Option<&str>`, matching the variant once.
    pub fn iter(&self) -> KeysIter<'_> {
        match self {
            KeysView::Dict {
                codes,
                validity,
                dict,
            } => KeysIter::Dict(codes.iter(), validity.iter(), dict),
            KeysView::Owned(v) => KeysIter::Owned(v.iter()),
        }
    }
}

/// Fused iterator behind [`KeysView::iter`].
#[derive(Debug, Clone)]
pub enum KeysIter<'a> {
    /// Dictionary codes + packed validity + the shared book.
    Dict(slice::Iter<'a, u32>, BitIter<'a>, &'a Dictionary),
    /// Owned rendered fallback walk.
    Owned(slice::Iter<'a, Option<String>>),
}

impl<'a> Iterator for KeysIter<'a> {
    type Item = Option<&'a str>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            KeysIter::Dict(codes, bits, dict) => match (codes.next(), bits.next()) {
                (Some(&c), Some(ok)) => Some(ok.then(|| dict.get(c))),
                _ => None,
            },
            KeysIter::Owned(it) => it.next().map(Option::as_deref),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            KeysIter::Dict(codes, _, _) => codes.size_hint(),
            KeysIter::Owned(it) => it.size_hint(),
        }
    }

    #[inline]
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        match self {
            KeysIter::Dict(codes, bits, dict) => {
                let (words, mut idx, _) = bits.raw_parts();
                let mut acc = init;
                for &c in codes {
                    let ok = words[idx >> 6] & (1u64 << (idx & 63)) != 0;
                    idx += 1;
                    acc = f(acc, ok.then(|| dict.get(c)));
                }
                acc
            }
            KeysIter::Owned(it) => it.fold(init, |acc, v| f(acc, v.as_deref())),
        }
    }
}

impl ExactSizeIterator for KeysIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn numeric_view_coerces_like_to_f64() {
        let c = Column::from_ints("a", vec![Some(4), None, Some(-2)]);
        let v = c.numeric_view().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(0), Some(4.0));
        assert_eq!(v.get(1), None);
        assert_eq!(v.to_vec(), c.to_f64());

        let b = Column::from_bools("b", vec![Some(true), Some(false), None]);
        let bv = b.numeric_view().unwrap();
        assert_eq!(bv.to_vec(), vec![Some(1.0), Some(0.0), None]);
    }

    #[test]
    fn numeric_view_rejects_strings() {
        let c = Column::from_str_slice("s", &["x"]);
        assert!(c.numeric_view().is_err());
    }

    #[test]
    fn keys_view_borrows_dict_strings() {
        let c = Column::from_strs(
            "s",
            vec![
                Some("red".into()),
                None,
                Some("blue".into()),
                Some("red".into()),
            ],
        );
        let v = c.keys_view();
        assert!(matches!(v, KeysView::Dict { .. }));
        assert_eq!(v.get(0), Some("red"));
        assert_eq!(v.get(1), None);
        assert_eq!(v.get(3), Some("red"));
    }

    #[test]
    fn keys_view_renders_numerics() {
        let c = Column::from_i64("x", vec![5, 7]);
        let v = c.keys_view();
        assert_eq!(v.get(0), Some("5"));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![Some("5"), Some("7")]);
    }
}
