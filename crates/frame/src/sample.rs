//! Seeded sampling: shuffles, train/test splits, k-fold indices.

use smartfeat_rng::{Rng, SliceRandom};

use crate::error::{FrameError, Result};
use crate::frame::DataFrame;

/// A deterministic permutation of `0..n` from `seed`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx
}

/// Split a frame into (train, test) with `train_fraction` of rows in train,
/// after a seeded shuffle. Mirrors the paper's 75/25 random partition.
pub fn train_test_split(
    df: &DataFrame,
    train_fraction: f64,
    seed: u64,
) -> Result<(DataFrame, DataFrame)> {
    if !(0.0..=1.0).contains(&train_fraction) {
        return Err(FrameError::InvalidArgument(format!(
            "train_fraction {train_fraction} must be in [0, 1]"
        )));
    }
    let idx = permutation(df.n_rows(), seed);
    let cut = (df.n_rows() as f64 * train_fraction).round() as usize;
    let (train_idx, test_idx) = idx.split_at(cut.min(idx.len()));
    Ok((df.take(train_idx)?, df.take(test_idx)?))
}

/// K-fold cross-validation indices: `k` (train, validation) index pairs
/// over a seeded permutation of `0..n`. Folds differ in size by at most 1.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 {
        return Err(FrameError::InvalidArgument(format!(
            "k-fold requires k ≥ 2, got {k}"
        )));
    }
    if n < k {
        return Err(FrameError::InvalidArgument(format!(
            "cannot split {n} rows into {k} folds"
        )));
    }
    let idx = permutation(n, seed);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        folds.push(idx[start..start + size].to_vec());
        start += size;
    }
    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let valid = folds[f].clone();
        let train: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(g, _)| *g != f)
            .flat_map(|(_, fold)| fold.iter().copied())
            .collect();
        out.push((train, valid));
    }
    Ok(out)
}

/// Sample `k` distinct row indices without replacement.
pub fn sample_rows(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut idx = permutation(n, seed);
    idx.truncate(k.min(n));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn frame(n: usize) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_i64("id", (0..n as i64).collect())]).unwrap()
    }

    #[test]
    fn permutation_is_a_permutation_and_deterministic() {
        let p1 = permutation(100, 7);
        let p2 = permutation(100, 7);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(permutation(100, 8), p1);
    }

    #[test]
    fn split_sizes() {
        let df = frame(100);
        let (train, test) = train_test_split(&df, 0.75, 42).unwrap();
        assert_eq!(train.n_rows(), 75);
        assert_eq!(test.n_rows(), 25);
    }

    #[test]
    fn split_partition_is_disjoint_and_complete() {
        let df = frame(40);
        let (train, test) = train_test_split(&df, 0.6, 1).unwrap();
        let mut ids: Vec<i64> = train
            .column("id")
            .unwrap()
            .to_f64()
            .into_iter()
            .flatten()
            .map(|v| v as i64)
            .chain(
                test.column("id")
                    .unwrap()
                    .to_f64()
                    .into_iter()
                    .flatten()
                    .map(|v| v as i64),
            )
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let df = frame(10);
        assert!(train_test_split(&df, 1.5, 0).is_err());
        assert!(train_test_split(&df, -0.1, 0).is_err());
    }

    #[test]
    fn kfold_covers_all_rows_once_as_validation() {
        let folds = kfold_indices(23, 5, 3).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all_valid: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all_valid.sort_unstable();
        assert_eq!(all_valid, (0..23).collect::<Vec<_>>());
        for (train, valid) in &folds {
            assert_eq!(train.len() + valid.len(), 23);
            assert!(valid.len() == 4 || valid.len() == 5);
            assert!(train.iter().all(|i| !valid.contains(i)));
        }
    }

    #[test]
    fn kfold_rejects_degenerate() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(3, 5, 0).is_err());
    }

    #[test]
    fn sample_rows_distinct() {
        let s = sample_rows(50, 10, 9);
        assert_eq!(s.len(), 10);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 10);
        assert_eq!(sample_rows(5, 10, 0).len(), 5);
    }
}
