//! # smartfeat-rng
//!
//! Seeded, std-only pseudo-random number generation for the SMARTFEAT
//! reproduction, plus a minimal property-test harness ([`check`]).
//!
//! The repository builds hermetically — no registry dependencies — so this
//! crate replaces `rand` everywhere randomness is needed: ML substrate
//! (bootstrap sampling, feature subsampling, random split thresholds,
//! weight init), frame sampling (shuffles, train/test splits), the
//! simulated FM's sampling strategies, the synthetic dataset generators,
//! and the CAAFE baseline.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded from a
//! single `u64` through **SplitMix64** — the standard recipe for expanding
//! a small seed into a full 256-bit state. Both algorithms are public
//! domain. The exact output stream is part of this crate's contract:
//! the simulated-FM transcripts, synthetic datasets, and every seeded
//! pipeline run are downstream of it, so regression tests pin the first
//! values of the seed-1 and seed-2 streams. Do not change the algorithm
//! or the derived helpers (`gen_range`, `shuffle`, …) without accepting
//! that every seeded artifact in the repository shifts.

pub mod check;

/// SplitMix64: a tiny, fast, well-distributed 64-bit generator. Used here
/// to expand a `u64` seed into xoshiro state, and usable on its own for
/// hashing-style seed derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// O(1) per-index seed derivation: the `index`-th output of the
/// SplitMix64 stream seeded at `base`, computed without stepping through
/// the `index - 1` earlier outputs.
///
/// `seed_jump(base, i) == { let mut sm = SplitMix64::new(base);
/// (0..=i).map(|_| sm.next_u64()).last() }` — bit-identical to the
/// sequential derivation the parallel ML substrates used before this
/// helper existed, so adopting it shifts no seeded artifact. This is the
/// sanctioned way to give each item of a parallel region its own RNG
/// stream: derive `Rng::seed_from_u64(seed_jump(base, i))` from the item
/// index `i`, never share or re-use one stream across items (the
/// `rng-seed-discipline` lint enforces this).
// sfcheck:seed-derivation
pub fn seed_jump(base: u64, index: u64) -> u64 {
    // SplitMix64's state after k calls is `base + k·γ`; output k is the
    // mix of that state. Jumping is therefore one add and one mix.
    let state = base.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The repository's seeded PRNG: xoshiro256++ with SplitMix64 seeding.
///
/// ```
/// use smartfeat_rng::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0..10usize);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Expand `seed` into a full 256-bit state via SplitMix64 (the seeding
    /// procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range. Panics on an empty range, like `rand`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Unbiased uniform integer in `[0, n)` via bitmask rejection.
    fn uniform_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n == 1 {
            return 0;
        }
        let mask = u64::MAX >> (n - 1).leading_zeros();
        loop {
            let v = self.next_u64() & mask;
            if v < n {
                return v;
            }
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_below(items.len() as u64) as usize])
        }
    }

    /// Index drawn proportionally to (unnormalized, non-negative) weights.
    /// `None` when `weights` is empty or sums to a non-positive/non-finite
    /// total.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut draw = self.gen_f64() * total;
        let mut last_positive = None;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                last_positive = Some(i);
                draw -= w;
                if draw <= 0.0 {
                    return Some(i);
                }
            }
        }
        last_positive // floating-point slack lands on the final candidate
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one uniform value.
    fn sample_from(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.uniform_below(span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.uniform_below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// Extension trait so `slice.shuffle(&mut rng)` reads like `rand`'s
/// `SliceRandom`, which it replaces.
pub trait SliceRandom {
    /// Shuffle in place.
    fn shuffle(&mut self, rng: &mut Rng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut Rng) {
        rng.shuffle(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the public-domain reference
        // implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    /// The exact output streams for seeds 1 and 2 are pinned: the
    /// simulated-FM transcripts (`SimulatedFm::gpt4(1)` etc.), the
    /// synthetic datasets, and every seeded pipeline artifact derive from
    /// them. If this test fails, every seeded output in the repository has
    /// silently shifted — fix the generator, don't re-pin the constants.
    #[test]
    fn seed_1_and_2_streams_are_pinned() {
        let mut r = Rng::seed_from_u64(1);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                14971601782005023387,
                13781649495232077965,
                1847458086238483744,
                13765271635752736470,
            ]
        );
        let mut r = Rng::seed_from_u64(2);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                14116099294885116970,
                9908902983784002248,
                12014208703938729165,
                5418364696612899442,
            ]
        );
        // Derived helpers are pinned too: they define the sampling
        // behaviour of everything downstream.
        let mut r = Rng::seed_from_u64(1);
        assert!((r.gen_f64() - 0.8116121588818848).abs() < 1e-15);
        assert!((r.gen_f64() - 0.7471047161582187).abs() < 1e-15);
        let mut r = Rng::seed_from_u64(1);
        let draws: Vec<usize> = (0..6).map(|_| r.gen_range(0..100usize)).collect();
        assert_eq!(draws, [27, 13, 32, 86, 36, 69]);
        let mut r = Rng::seed_from_u64(2);
        let mut v: Vec<u8> = (0..8).collect();
        r.shuffle(&mut v);
        assert_eq!(v, [1, 4, 6, 3, 7, 5, 0, 2]);
    }

    /// `seed_jump` must stay bit-identical to walking the SplitMix64
    /// stream sequentially — the parallel seed derivations in `ml` rely on
    /// this equivalence to keep pinned seeded artifacts unchanged.
    #[test]
    fn seed_jump_equals_sequential_splitmix() {
        for base in [0u64, 1, 2, 42, 1234567, u64::MAX] {
            let mut sm = SplitMix64::new(base);
            for index in 0..64u64 {
                let sequential = sm.next_u64();
                assert_eq!(
                    seed_jump(base, index),
                    sequential,
                    "base={base} index={index}"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_interval_and_covers_it() {
        let mut rng = Rng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
            lo_seen |= v < 0.01;
            hi_seen |= v > 0.99;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let b = rng.gen_range(0..3u8);
            assert!(b < 3);
        }
        // Every value of a small range appears.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_f64_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let shuffled = v.clone();
        let mut sorted = v;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Same seed reproduces the same permutation.
        let mut rng2 = Rng::seed_from_u64(11);
        let mut v2: Vec<usize> = (0..100).collect();
        rng2.shuffle(&mut v2);
        assert_eq!(v2, shuffled);
        assert_ne!(shuffled, (0..100).collect::<Vec<_>>(), "identity shuffle");
    }

    #[test]
    fn choose_and_empty() {
        let mut rng = Rng::seed_from_u64(2);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = Rng::seed_from_u64(6);
        let weights = [1.0, 0.0, 19.0];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight drawn");
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
        assert!(rng.weighted_index(&[]).is_none());
        assert!(rng.weighted_index(&[0.0, -1.0]).is_none());
    }

    #[test]
    fn slice_random_extension_matches_inherent() {
        use super::SliceRandom as _;
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut Rng::seed_from_u64(8));
        Rng::seed_from_u64(8).shuffle(&mut b);
        assert_eq!(a, b);
    }
}
