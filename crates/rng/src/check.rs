//! A minimal property-test harness: seeded case generation with
//! reproducible, shrink-free failure reporting.
//!
//! This replaces `proptest` for the repository's property tests. Each case
//! gets its own deterministically derived [`Rng`]; the test body draws
//! whatever inputs it needs from generator helpers ([`vec_f64`],
//! [`string_of`], [`arbitrary_text`], …) and asserts with the standard
//! `assert!` family. On failure the harness reports the case index and the
//! exact seed, so one failing case can be replayed in isolation:
//!
//! ```
//! use smartfeat_rng::check;
//!
//! check::cases(64, |rng| {
//!     let xs = check::vec_f64(rng, 1..10, -5.0..5.0);
//!     assert!(xs.iter().all(|x| x.abs() <= 5.0));
//! });
//! ```
//!
//! Environment knobs:
//! - `SMARTFEAT_CHECK_CASES` overrides every `cases(n, …)` count.
//! - `SMARTFEAT_CHECK_SEED` replays a single case seed (printed on
//!   failure) instead of the whole sweep.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::{Rng, SplitMix64};

/// Base of the per-case seed derivation. Changing it re-rolls every
/// property test's inputs.
const CASE_SEED_BASE: u64 = 0x5EED_CA5E_2024_0001;

/// Derive the seed of case `i`.
fn case_seed(i: u64) -> u64 {
    SplitMix64::new(CASE_SEED_BASE ^ i).next_u64()
}

/// Run `f` against `n` deterministically seeded cases. Panics (re-raising
/// the case's own panic) after printing the case index and replay seed.
pub fn cases(n: usize, mut f: impl FnMut(&mut Rng)) {
    // sfcheck:allow(env-dependence) replay knob for the property harness; never reaches pipeline output
    if let Ok(seed) = std::env::var("SMARTFEAT_CHECK_SEED") {
        let seed: u64 = seed.parse().expect("SMARTFEAT_CHECK_SEED must be a u64");
        let mut rng = Rng::seed_from_u64(seed);
        f(&mut rng);
        return;
    }
    // sfcheck:allow(env-dependence) case-count knob for the property harness; never reaches pipeline output
    let n = std::env::var("SMARTFEAT_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(n);
    for i in 0..n as u64 {
        let seed = case_seed(i);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::seed_from_u64(seed);
            f(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!("property failed at case {i}/{n}; replay with SMARTFEAT_CHECK_SEED={seed}");
            resume_unwind(panic);
        }
    }
}

/// A vector whose length is drawn from `len` and whose elements come
/// from `g`.
pub fn vec_with<T>(rng: &mut Rng, len: Range<usize>, mut g: impl FnMut(&mut Rng) -> T) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| g(rng)).collect()
}

/// A `Vec<f64>` with length in `len` and uniform values in `vals`.
pub fn vec_f64(rng: &mut Rng, len: Range<usize>, vals: Range<f64>) -> Vec<f64> {
    vec_with(rng, len, |r| r.gen_range(vals.clone()))
}

/// A string of up to `max_len` chars drawn uniformly from `charset`.
pub fn string_of(rng: &mut Rng, charset: &str, max_len: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    assert!(!chars.is_empty(), "string_of needs a non-empty charset");
    let n = rng.gen_range(0..=max_len);
    (0..n)
        .map(|_| *rng.choose(&chars).expect("non-empty"))
        .collect()
}

/// Arbitrary text of up to `max_len` chars: printable ASCII, whitespace
/// (including newlines), and a sprinkling of multi-byte characters — the
/// `".{0,n}"` workhorse for robustness tests.
pub fn arbitrary_text(rng: &mut Rng, max_len: usize) -> String {
    const EXOTIC: &[char] = &['é', 'λ', '中', '🦀', 'ß', '±', '—', '"'];
    let n = rng.gen_range(0..=max_len);
    (0..n)
        .map(|_| match rng.gen_range(0..20u32) {
            0 => '\n',
            1 => *rng.choose(EXOTIC).expect("non-empty"),
            _ => char::from(rng.gen_range(0x20u8..0x7F)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        cases(5, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        cases(5, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
        // Distinct cases see distinct streams.
        assert!(first.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn generators_respect_bounds() {
        cases(32, |rng| {
            let v = vec_f64(rng, 2..10, -1.0..1.0);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            let s = string_of(rng, "abc", 5);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| "abc".contains(c)));
            let t = arbitrary_text(rng, 40);
            assert!(t.chars().count() <= 40);
        });
    }

    #[test]
    fn failing_case_reports_and_propagates() {
        let result = std::panic::catch_unwind(|| {
            cases(10, |_| panic!("intentional"));
        });
        assert!(result.is_err());
    }
}
