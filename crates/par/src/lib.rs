//! # smartfeat-par
//!
//! Std-only deterministic parallel execution for the SMARTFEAT
//! reproduction: a scoped `scope`/`spawn` API with panic propagation and
//! an ordered [`par_map`] whose output is **bit-identical to the serial
//! loop** for any thread count.
//!
//! ## Determinism contract
//!
//! Every parallel entry point here takes a closure that must be a pure
//! function of its input index/item (callers seed any randomness per
//! item — see `smartfeat_rng::SplitMix64` seed derivation in `ml::forest`).
//! [`par_map`] assigns results by input index, so the returned `Vec` is
//! independent of scheduling order; with `threads <= 1` the exact serial
//! code path runs (no worker threads, no channels). Differential tests in
//! `tests/par_determinism.rs` hold the workspace to this contract.
//!
//! ## Thread-count resolution
//!
//! [`resolve_threads`] combines a configured value (0 = auto) with the
//! `SMARTFEAT_THREADS` environment override, which wins when set. `1`
//! selects the exact serial path; `0`/unset falls back to
//! `std::thread::available_parallelism`.
//!
//! Hermetic-build policy: this crate depends on `std` only.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Name of the environment override consulted by [`resolve_threads`].
pub const THREADS_ENV: &str = "SMARTFEAT_THREADS";

// Process-wide pool telemetry, kept dependency-free (this crate stays
// std-only; the observability layer bridges deltas out of these).
static POOL_BATCHES: AtomicU64 = AtomicU64::new(0);
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);
static POOL_WORKERS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Cumulative pool counters since process start; see [`pool_stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `par_map`/`par_map_indexed` invocations (including serial-path runs).
    pub batches: u64,
    /// Total items mapped across all batches.
    pub tasks: u64,
    /// Worker threads spawned (0 for serial-path batches). Depends on the
    /// resolved thread count, so observability reports treat it as volatile.
    pub workers_spawned: u64,
}

impl PoolStats {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// run-scoped deltas over the process-wide accumulators.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            batches: self.batches.saturating_sub(earlier.batches),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            workers_spawned: self.workers_spawned.saturating_sub(earlier.workers_spawned),
        }
    }
}

/// Snapshot the cumulative pool counters. `batches` and `tasks` are pure
/// functions of the workload (deterministic for any thread count);
/// `workers_spawned` varies with the resolved thread count.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        batches: POOL_BATCHES.load(Ordering::Relaxed),
        tasks: POOL_TASKS.load(Ordering::Relaxed),
        workers_spawned: POOL_WORKERS_SPAWNED.load(Ordering::Relaxed),
    }
}

/// Number of hardware threads, with a floor of 1.
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Effective thread count: the `SMARTFEAT_THREADS` environment override
/// when set to a positive integer, otherwise `configured` when positive,
/// otherwise [`available_threads`]. `1` means "run the exact serial path".
///
/// The environment is read on every call (not cached) so test harnesses
/// can run the same process tree under different settings.
pub fn resolve_threads(configured: usize) -> usize {
    if let Some(n) = env_threads() {
        return n;
    }
    if configured > 0 {
        configured
    } else {
        available_threads()
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Acquire a mutex, treating poisoning as the panic it already is.
///
/// A poisoned `std::sync::Mutex` means another thread panicked while
/// holding the guard; with this workspace's fail-fast pools (spawn
/// panics re-raise at join) the only sound continuation is to re-raise
/// here too. Keeping the `expect` in one audited place gives every
/// caller a panic-free call site — and gives `sfcheck`'s lock pass a
/// single fn to model: the marker below tells it a call to this fn
/// acquires its first argument.
// sfcheck:lock-helper
pub fn lock_or_poison<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // sfcheck:allow(panic-reachability) poisoned lock only re-raises a panic from another thread
    m.lock().expect("lock poisoned")
}

/// A scope in which borrowed-data tasks can be spawned; created by
/// [`scope`]. Mirrors `std::thread::Scope` with panic-propagating joins.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a task spawned on a [`Scope`].
pub struct ScopedHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedHandle<'scope, T> {
    /// Wait for the task and return its value. If the task panicked, the
    /// panic is propagated here (resumed, not wrapped in a `Result`).
    pub fn join(self) -> T {
        match self.inner.join() {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Whether the task has finished (without blocking).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from the enclosing scope.
    // sfcheck:parallel-entry
    pub fn spawn<T, F>(&self, f: F) -> ScopedHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedHandle {
            inner: self.inner.spawn(f),
        }
    }
}

/// Run `f` with a [`Scope`] on which borrowed-data tasks can be spawned.
/// All spawned tasks are joined before `scope` returns. A panic in any
/// unjoined task is propagated to the caller — tasks never disappear
/// silently and a panicking task cannot deadlock the scope. Scopes nest.
// sfcheck:parallel-entry
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Map `f` over `items` on up to `threads` worker threads, returning
/// results **in input order**. With `threads <= 1` (or fewer than two
/// items) the serial loop runs on the calling thread. A panic in `f`
/// propagates to the caller after the remaining workers drain.
// sfcheck:parallel-entry
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(threads, items.len(), |i| f(&items[i]))
}

/// [`par_map`] over the index range `0..n`: `f(i)` for each index, results
/// in index order. This is the primitive the seeded-work callers use
/// (index → derived seed → independent computation).
// sfcheck:parallel-entry
pub fn par_map_indexed<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n);
    POOL_BATCHES.fetch_add(1, Ordering::Relaxed);
    POOL_TASKS.fetch_add(n as u64, Ordering::Relaxed);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    POOL_WORKERS_SPAWNED.fetch_add(workers as u64, Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let f = &f;
    let next = &next;
    let slots = thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                // Dynamic work claiming: scheduling order varies run to
                // run, but results land by index, so output does not.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
        // thread::scope joins every worker here; a panicked worker's
        // payload is resumed, which unwinds past the return below.
    });
    slots
        .into_iter()
        // sfcheck:allow(panic-reachability) invariant: scope join proves every index was sent
        .map(|slot| slot.expect("par_map worker delivered every index"))
        .collect()
}

/// Fallible ordered map: like [`par_map_indexed`] but `f` returns a
/// `Result`, and the **lowest-index** error is returned — matching what
/// the serial loop would report — even if a later item failed first in
/// wall-clock time.
// sfcheck:parallel-entry
pub fn try_par_map_indexed<R, E, F>(threads: usize, n: usize, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(n);
    for r in par_map_indexed(threads, n, f) {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_and_length() {
        for threads in [1, 2, 3, 8, 64] {
            for n in [0usize, 1, 2, 7, 100] {
                let items: Vec<usize> = (0..n).collect();
                let got = par_map(threads, &items, |&i| i * 3 + 1);
                let want: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
                assert_eq!(got, want, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let items: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        assert_eq!(par_map(1, &items, f), par_map(8, &items, f));
    }

    #[test]
    fn panicking_task_propagates_not_deadlocks() {
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(4, 50, |i| {
                if i == 23 {
                    panic!("task 23 failed");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must propagate out of par_map");
    }

    #[test]
    fn scope_spawn_join_returns_values() {
        let data = [1, 2, 3];
        let sum = scope(|s| {
            let h1 = s.spawn(|| data.iter().sum::<i32>());
            let h2 = s.spawn(|| data.len());
            h1.join() + h2.join() as i32
        });
        assert_eq!(sum, 9);
    }

    #[test]
    fn scope_propagates_unjoined_panic() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("unjoined task panic"));
                // handle dropped without join — scope must still surface it
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_scopes_complete() {
        let total = AtomicU64::new(0);
        scope(|outer| {
            for _ in 0..3 {
                outer.spawn(|| {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let r: Result<Vec<usize>, usize> =
            try_par_map_indexed(4, 100, |i| if i == 7 || i == 70 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), 7);
        let ok: Result<Vec<usize>, usize> = try_par_map_indexed(4, 10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_stats_count_batches_and_tasks() {
        // Counters are process-wide and sibling tests run concurrently, so
        // assert lower bounds on the delta rather than exact values.
        let before = pool_stats();
        par_map_indexed(1, 5, |i| i); // serial path: no workers spawned
        par_map_indexed(4, 8, |i| i);
        let d = pool_stats().since(&before);
        assert!(d.batches >= 2, "batches delta {d:?}");
        assert!(d.tasks >= 13, "tasks delta {d:?}");
        assert!(d.workers_spawned >= 4, "workers delta {d:?}");
    }

    #[test]
    fn resolve_threads_prefers_positive_config_then_auto() {
        // Env-free behaviour (the harness never sets SMARTFEAT_THREADS for
        // unit tests of this crate; env-driven runs are exercised by the
        // tests/threads_matrix.rs differential harness).
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(resolve_threads(3), 3);
            assert_eq!(resolve_threads(0), available_threads());
        }
        assert!(available_threads() >= 1);
    }
}
