//! Downstream evaluation: 75/25 split, the five paper models, AUC × 100.

use smartfeat_frame::sample::permutation;
use smartfeat_frame::DataFrame;
use smartfeat_ml::cv::{evaluate_models, ModelScores};
use smartfeat_ml::{Matrix, ModelKind};

/// Build the feature matrix + labels from a frame (every non-target column
/// is a feature; nulls and non-numerics fill as 0, matching the paper's
/// post-factorization handling).
pub fn matrix_and_labels(df: &DataFrame, target: &str) -> Option<(Matrix, Vec<u8>)> {
    let features: Vec<&str> = df
        .column_names()
        .into_iter()
        .filter(|n| *n != target)
        .collect();
    let rows = df.to_matrix(&features, 0.0).ok()?;
    let x = Matrix::from_rows(rows).ok()?;
    let y = df.to_labels(target).ok()?;
    Some((x, y))
}

/// Split deterministically into (train, test) row indices, 75/25.
pub fn split_indices(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let perm = permutation(n, seed);
    let cut = (n as f64 * 0.75).round() as usize;
    (perm[..cut].to_vec(), perm[cut..].to_vec())
}

/// Evaluate the given models on an engineered frame with a 75/25 split.
pub fn evaluate_frame_models(
    df: &DataFrame,
    target: &str,
    models: &[ModelKind],
    seed: u64,
) -> Option<ModelScores> {
    let (x, y) = matrix_and_labels(df, target)?;
    let (train_idx, test_idx) = split_indices(x.rows(), seed);
    let x_train = x.take_rows(&train_idx);
    let x_test = x.take_rows(&test_idx);
    let y_train: Vec<u8> = train_idx.iter().map(|&i| y[i]).collect();
    let y_test: Vec<u8> = test_idx.iter().map(|&i| y[i]).collect();
    evaluate_models(models, &x_train, &y_train, &x_test, &y_test, seed).ok()
}

/// Evaluate all five paper models.
pub fn evaluate_frame(df: &DataFrame, target: &str, seed: u64) -> Option<ModelScores> {
    evaluate_frame_models(df, target, &ModelKind::all(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;

    #[test]
    fn split_is_deterministic_partition() {
        let (a, b) = split_indices(100, 5);
        assert_eq!(a.len(), 75);
        assert_eq!(b.len(), 25);
        let (a2, _) = split_indices(100, 5);
        assert_eq!(a, a2);
        let mut all: Vec<usize> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn evaluates_lawschool_above_chance() {
        let ds = smartfeat_datasets::by_name("Lawschool", 600, 2).unwrap();
        let prep = prepare(&ds);
        let scores = evaluate_frame_models(&prep.frame, &prep.target, &[ModelKind::LR], 7).unwrap();
        assert!(scores.average() > 65.0, "LR AUC = {}", scores.average());
    }
}
