//! Plain-text table rendering for the `repro` binary.

/// Render an aligned text table from a header and rows.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("{cell:<w$}"));
            if i + 1 < widths.len() {
                line.push_str("  ");
            }
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format an AUC cell with the paper's improvement annotation:
/// `86.76 (+4.3%)`, `91.47 (≈)`, `83.68 (-0.4%)`.
pub fn auc_cell(value: f64, initial: f64) -> String {
    let pct = (value - initial) / initial * 100.0;
    let tag = if pct.abs() < 0.25 {
        "(≈)".to_string()
    } else if pct > 0.0 {
        format!("(+{pct:.1}%)")
    } else {
        format!("({pct:.1}%)")
    };
    format!("{value:.2} {tag}")
}

/// Format a duration compactly (`1.2s`, `340ms`).
pub fn duration_cell(d: std::time::Duration) -> String {
    let ms = d.as_secs_f64() * 1000.0;
    if ms >= 1000.0 {
        format!("{:.1}s", ms / 1000.0)
    } else {
        format!("{ms:.0}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name".into(), "value".into()],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn auc_cell_annotations() {
        assert_eq!(auc_cell(86.76, 82.2), "86.76 (+5.5%)");
        assert!(auc_cell(91.47, 91.46).contains("≈"));
        assert!(auc_cell(83.68, 84.0).contains("(-0.4%)"));
    }

    #[test]
    fn duration_formats() {
        assert_eq!(duration_cell(Duration::from_millis(340)), "340ms");
        assert_eq!(duration_cell(Duration::from_millis(1230)), "1.2s");
    }
}
