//! Standard pre-FE cleaning, matching the paper's setup: `dropna` plus
//! factorization of categorical features.

use smartfeat_datasets::Dataset;
use smartfeat_frame::DataFrame;

/// A cleaned dataset ready for the method grid.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Factorized frame (string columns → integer codes).
    pub frame: DataFrame,
    /// Names of the originally-categorical columns.
    pub categorical: Vec<String>,
    /// Target column name.
    pub target: String,
}

/// Clean one dataset: drop rows with nulls, factorize string columns.
pub fn prepare(ds: &Dataset) -> Prepared {
    let (mut frame, _kept) = ds.frame.dropna();
    let categorical: Vec<String> = frame
        .columns()
        .iter()
        .filter(|c| !c.is_numeric())
        .map(|c| c.name().to_string())
        .collect();
    frame.factorize_strings();
    Prepared {
        frame,
        categorical,
        target: ds.target.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_factorizes_and_keeps_shape() {
        let ds = smartfeat_datasets::by_name("Adult", 300, 1).unwrap();
        let prep = prepare(&ds);
        assert_eq!(prep.frame.n_rows(), 300, "no nulls in synthetic data");
        assert_eq!(prep.categorical.len(), 8);
        for c in prep.frame.columns() {
            assert!(c.is_numeric(), "{} still non-numeric", c.name());
        }
        assert_eq!(prep.target, "income_over_50k");
    }
}
