//! A tiny Criterion-compatible benchmark harness: warmup, calibration,
//! median-of-N timing — no external crates (hermetic-build policy).
//!
//! The `benches/*.rs` files were written against `criterion`'s API; this
//! module re-implements the slice of that API they use (`Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `criterion_group!`,
//! `criterion_main!`), so the bench sources stay idiomatic while running
//! on a std-only harness.
//!
//! Methodology: each benchmark is first *calibrated* — the iteration count
//! per sample doubles until one sample takes ≥ 1 ms (capped) — then
//! `sample_size` samples are collected and the per-iteration median,
//! minimum, and maximum are reported. Set `SMARTFEAT_BENCH_JSON=<path>` to
//! also append one JSON line per benchmark for trajectory tracking.

use std::fmt::Display;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Duration;

use smartfeat_obs::global::stopwatch;

/// Per-sample calibration target: grow the iteration batch until a single
/// timed sample takes at least this long.
const CALIBRATION_TARGET: Duration = Duration::from_millis(1);

/// Calibration stops doubling here even for very fast bodies.
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 20;

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// Operator override for sample counts: `SMARTFEAT_BENCH_SAMPLES=<n>` wins
/// over both the default and explicit `sample_size()` calls, so CI smoke
/// runs can sweep every benchmark cheaply without editing bench sources.
fn sample_size_override() -> Option<usize> {
    // sfcheck:allow(env-dependence) operator knob for CI smoke runs; timings are volatile by design
    std::env::var("SMARTFEAT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group sharing a `sample_size`, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Run one benchmark in the group by name.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The timing driver handed to each benchmark body, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = stopwatch("bench.harness.sample");
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's summary statistics (per-iteration durations).
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Full benchmark label (`group/function/parameter`).
    pub label: String,
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
    /// Samples collected.
    pub samples: usize,
    /// Iterations per sample (from calibration).
    pub iters_per_sample: u64,
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) -> BenchStats {
    let sample_size = sample_size_override().unwrap_or(sample_size);
    // Calibrate: double the batch until one sample crosses the target.
    // The calibration runs double as warmup.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= CALIBRATION_TARGET || iters >= MAX_ITERS_PER_SAMPLE {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<Duration> = (0..sample_size.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters.max(1) as u32
        })
        .collect();
    per_iter.sort_unstable();

    let stats = BenchStats {
        label: label.to_string(),
        median: median_of_sorted(&per_iter),
        min: per_iter[0],
        max: per_iter[per_iter.len() - 1],
        samples: per_iter.len(),
        iters_per_sample: iters,
    };
    println!(
        "bench {:<48} median {:>10}  (min {}, max {}; {} samples x {} iters)",
        stats.label,
        format_duration(stats.median),
        format_duration(stats.min),
        format_duration(stats.max),
        stats.samples,
        stats.iters_per_sample,
    );
    // sfcheck:allow(env-dependence) output-sink path chosen by the operator; timings are volatile by design
    if let Ok(path) = std::env::var("SMARTFEAT_BENCH_JSON") {
        // sfcheck:allow(determinism-taint) the env value picks where the file goes, not what it says
        append_json_line(&path, &stats);
    }
    stats
}

/// Median of an already-sorted, non-empty sample vector. Odd counts take
/// the middle element; even counts average the two middle elements (the
/// textbook midpoint, not the upper-middle sample).
fn median_of_sorted(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

// sfcheck:output-sink
fn append_json_line(path: &str, s: &BenchStats) {
    use smartfeat_frame::json::JsonValue;
    let line = JsonValue::object([
        ("label", s.label.as_str().into()),
        ("median_ns", (s.median.as_nanos() as f64).into()),
        ("min_ns", (s.min.as_nanos() as f64).into()),
        ("max_ns", (s.max.as_nanos() as f64).into()),
        ("samples", s.samples.into()),
        ("iters_per_sample", (s.iters_per_sample as f64).into()),
    ])
    .emit();
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| writeln!(file, "{line}"));
    if let Err(e) = result {
        eprintln!("warning: could not append bench JSON to {path}: {e}");
    }
}

/// Human-readable duration with ns/µs/ms/s units.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_stats_are_sane() {
        let stats = run_benchmark("test/sum", 5, |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(stats.samples, 5);
        assert!(stats.iters_per_sample >= 1);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
        assert!(stats.median > Duration::ZERO);
    }

    #[test]
    fn group_and_id_compose_labels() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let stats = {
            let id = BenchmarkId::new("f", 10);
            assert_eq!(id.label, "f/10");
            run_benchmark("g/f/10", 2, |b| b.iter(|| 1 + 1))
        };
        assert_eq!(stats.label, "g/f/10");
        assert_eq!(BenchmarkId::from_parameter("LR").label, "LR");
        group.finish();
    }

    #[test]
    fn median_averages_middle_pair_for_even_counts() {
        let ms = Duration::from_millis;
        // Odd count: exact middle element.
        assert_eq!(median_of_sorted(&[ms(1), ms(2), ms(9)]), ms(2));
        // Even count: midpoint of the two middle samples, NOT the
        // upper-middle element (the regression this pins down).
        assert_eq!(median_of_sorted(&[ms(1), ms(2), ms(4), ms(9)]), ms(3));
        assert_eq!(median_of_sorted(&[ms(2), ms(4)]), ms(3));
        // Single sample: that sample.
        assert_eq!(median_of_sorted(&[ms(7)]), ms(7));
    }

    #[test]
    fn format_duration_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00µs");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }
}
