//! Developer calibration tool: per-dataset diagnostics at chosen scale —
//! initial per-model AUC, per-method outcomes, SMARTFEAT's generated
//! features, and CAAFE failure messages. Not part of the paper tables;
//! used to tune the synthetic generators and pipeline defaults.

use std::time::Duration;

use smartfeat::SmartFeatConfig;
use smartfeat_bench::evalml::evaluate_frame;
use smartfeat_bench::methods::{run_method, run_smartfeat, MethodName};
use smartfeat_bench::prep::prepare;
use smartfeat_ml::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let only: Option<&String> = args.get(2);
    let deadline = Duration::from_secs(30);

    for ds in smartfeat_datasets::all_scaled(scale, seed) {
        if let Some(name) = only {
            if !ds.name.contains(name.as_str()) {
                continue;
            }
        }
        let prep = prepare(&ds);
        let initial = evaluate_frame(&prep.frame, &prep.target, seed + 1000).unwrap();
        println!("\n### {} (n={})", ds.name, prep.frame.n_rows());
        print!("  initial:");
        for (k, v) in &initial.scores {
            print!(" {}={:.1}", k.name(), v);
        }
        println!("  avg={:.2}", initial.average());

        for method in MethodName::all() {
            let out = run_method(
                method,
                &prep.frame,
                &ds,
                &prep.categorical,
                ModelKind::RF,
                deadline,
                seed,
            );
            match &out.failure {
                Some(f) => println!("  {:<13} FAILED: {f}", method.name()),
                None => {
                    let scores = evaluate_frame(&out.frame, &prep.target, seed + 1000).unwrap();
                    print!(
                        "  {:<13} avg={:.2} ({:+.1}%) gen={} sel={} |",
                        method.name(),
                        scores.average(),
                        (scores.average() - initial.average()) / initial.average() * 100.0,
                        out.generated_count,
                        out.selected_count
                    );
                    for (k, v) in &scores.scores {
                        print!(" {}={:.1}", k.name(), v);
                    }
                    println!();
                }
            }
        }
        let sf = run_smartfeat(&prep.frame, &ds, SmartFeatConfig::default(), false, seed);
        println!("  SMARTFEAT features: {:?}", sf.new_features);
        let originals: Vec<&str> = prep
            .frame
            .column_names()
            .into_iter()
            .filter(|n| !sf.frame.has_column(n))
            .collect();
        println!("  dropped originals: {originals:?}");
    }
}
