//! Dev tool: which single SMARTFEAT-added feature hurts GaussianNB?

use smartfeat::SmartFeatConfig;
use smartfeat_bench::evalml::{evaluate_frame_models, matrix_and_labels, split_indices};
use smartfeat_bench::methods::run_smartfeat;
use smartfeat_bench::prep::prepare;
use smartfeat_ml::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().cloned().unwrap_or_else(|| "Housing".into());
    let rows: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let ds = smartfeat_datasets::by_name(&name, rows, 42).expect("dataset");
    let prep = prepare(&ds);
    let seed = 1042;
    let base = evaluate_frame_models(&prep.frame, &prep.target, &[ModelKind::NB], seed)
        .unwrap()
        .average();
    println!("NB initial: {base:.2}");
    let out = run_smartfeat(&prep.frame, &ds, SmartFeatConfig::default(), false, 42);
    for feat in &out.new_features {
        let mut df = prep.frame.clone();
        df.upsert_column(out.frame.column(feat).unwrap().clone())
            .unwrap();
        let auc = evaluate_frame_models(&df, &prep.target, &[ModelKind::NB], seed)
            .unwrap()
            .average();
        if (auc - base).abs() > 0.5 {
            println!("  {feat:<50} NB={auc:.2} ({:+.2})", auc - base);
        }
    }
    // And the full frame:
    let full = evaluate_frame_models(&out.frame, &prep.target, &[ModelKind::NB], seed)
        .unwrap()
        .average();
    println!("NB with all SMARTFEAT features: {full:.2}");
    let _ = (
        matrix_and_labels(&prep.frame, &prep.target),
        split_indices(10, 1),
    );
}
