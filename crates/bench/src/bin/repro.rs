//! `repro` — regenerate every table and figure of the SMARTFEAT paper.
//!
//! ```text
//! repro [--scale F] [--seed N] [--deadline SECS] [--full] <command>
//!
//! commands:
//!   fig1          Figure 1   row-level vs feature-level interaction cost
//!   table3        Table 3    dataset statistics
//!   table4        Table 4    average-AUC grid (also prints Table 5 input)
//!   table5        Table 5    median-AUC grid
//!   efficiency    §4.2       wall-clock per method with timeout notes
//!   table6        Table 6    top-10 feature importance on Tennis
//!   table7        Table 7    operator ablation on Tennis
//!   descriptions  §4.2       full data card vs names-only ablation
//!   ablations     DESIGN.md  pipeline design-choice ablations
//!   all           everything above, in paper order
//! ```
//!
//! `--scale` scales the paper's row counts (default 0.25; `--full` = 1.0).
//! `--deadline` is the per-method wall-clock budget in seconds — the
//! analogue of the paper's one-hour limit, scaled to this implementation.

use std::time::Duration;

use smartfeat_bench::grid::{run_grid, GridConfig};
use smartfeat_bench::{fig1, tables};

struct Args {
    scale: f64,
    seed: u64,
    deadline: Duration,
    command: String,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = 0.25_f64;
    let mut seed = 42_u64;
    let mut deadline = Duration::from_secs(12);
    let mut command = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                scale = argv
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--deadline" => {
                let secs: f64 = argv
                    .next()
                    .ok_or("--deadline needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --deadline: {e}"))?;
                deadline = Duration::from_secs_f64(secs);
            }
            "--full" => scale = 1.0,
            other if !other.starts_with('-') => command = Some(other.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        scale,
        seed,
        deadline,
        command: command.unwrap_or_else(|| "all".to_string()),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: repro [--scale F] [--seed N] [--deadline SECS] [--full] <command>");
            std::process::exit(2);
        }
    };
    let grid_config = GridConfig {
        scale: args.scale,
        seed: args.seed,
        method_deadline: args.deadline,
        datasets: Vec::new(),
    };
    let needs_grid = matches!(
        args.command.as_str(),
        "table4" | "table5" | "efficiency" | "all"
    );
    let grid = needs_grid.then(|| {
        eprintln!(
            "running the method grid (scale {}, seed {}, deadline {:?}) …",
            args.scale, args.seed, args.deadline
        );
        run_grid(&grid_config)
    });

    let print_header = |title: &str| {
        println!("\n== {title} ==");
    };

    let run_one = |cmd: &str| match cmd {
        "fig1" => {
            print_header("Figure 1: row-level vs feature-level FM interaction cost");
            println!("{}", tables::fig1(&fig1::default_sweep(), args.seed));
        }
        "table3" => {
            print_header("Table 3: dataset statistics");
            println!("{}", tables::table3(args.scale, args.seed));
        }
        "table4" => {
            print_header("Table 4: average AUC across the five ML models");
            println!("{}", tables::render_table4(grid.as_ref().expect("grid")));
        }
        "table5" => {
            print_header("Table 5: median AUC across the five ML models");
            println!("{}", tables::render_table5(grid.as_ref().expect("grid")));
        }
        "efficiency" => {
            print_header("Section 4.2: feature-engineering wall-clock per method");
            println!("{}", tables::efficiency(grid.as_ref().expect("grid")));
        }
        "table6" => {
            print_header("Table 6: top-10 important features on Tennis");
            println!("{}", tables::table6(args.scale, args.seed, args.deadline));
        }
        "table7" => {
            print_header("Table 7: operator ablation on Tennis");
            println!("{}", tables::table7(args.scale, args.seed));
        }
        "descriptions" => {
            print_header("Section 4.2: impact of feature descriptions (Tennis)");
            println!("{}", tables::descriptions(args.scale, args.seed));
        }
        "ablations" => {
            print_header("Design-choice ablations (DESIGN.md): pipeline knobs");
            println!("{}", tables::ablations(args.scale, args.seed));
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    };

    if args.command == "all" {
        for cmd in [
            "fig1",
            "table3",
            "table4",
            "table5",
            "efficiency",
            "table6",
            "table7",
            "descriptions",
            "ablations",
        ] {
            run_one(cmd);
        }
    } else {
        run_one(&args.command);
    }
}
