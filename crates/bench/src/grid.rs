//! The Table 4/5 evaluation grid: 8 datasets × (initial + 4 methods) ×
//! 5 downstream models.

use std::time::Duration;

use smartfeat_obs::global::stopwatch;

use smartfeat_datasets::Dataset;
use smartfeat_ml::cv::ModelScores;
use smartfeat_ml::ModelKind;

use crate::evalml::{evaluate_frame, evaluate_frame_models};
use crate::methods::{run_method, MethodName};
use crate::prep::prepare;

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Fraction of the paper's row counts to generate (1.0 = full size).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Per-method wall-clock budget — the analogue of the paper's one-hour
    /// limit, scaled to this implementation's speed.
    pub method_deadline: Duration,
    /// Which datasets to run (paper names); empty = all eight.
    pub datasets: Vec<String>,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            scale: 0.25,
            seed: 42,
            method_deadline: Duration::from_secs(12),
            datasets: Vec::new(),
        }
    }
}

/// One (dataset, method) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Per-model AUCs actually obtained (may exclude timed-out models).
    pub scores: Option<ModelScores>,
    /// Models excluded because their (CAAFE) run timed out.
    pub excluded_models: Vec<ModelKind>,
    /// Why the cell is empty, when it is ("failed: …" / "timeout").
    pub note: Option<String>,
    /// Wall-clock spent engineering (not evaluating).
    pub elapsed: Duration,
    /// Candidates generated before selection.
    pub generated: usize,
    /// Features kept.
    pub selected: usize,
}

/// One dataset's full row.
#[derive(Debug, Clone)]
pub struct DatasetResult {
    /// Dataset name.
    pub name: String,
    /// Initial (no feature engineering) scores.
    pub initial: ModelScores,
    /// Per-method outcomes in [`MethodName::all`] order.
    pub cells: Vec<(MethodName, CellOutcome)>,
}

/// The whole grid.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// One row per dataset, in Table 3 order.
    pub datasets: Vec<DatasetResult>,
    /// Config used.
    pub config: GridConfig,
}

/// Run the full grid.
pub fn run_grid(config: &GridConfig) -> GridResult {
    let all = smartfeat_datasets::all_scaled(config.scale, config.seed);
    let selected: Vec<Dataset> = if config.datasets.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|d| config.datasets.iter().any(|n| n == d.name))
            .collect()
    };
    let datasets = selected.iter().map(|ds| run_dataset(ds, config)).collect();
    GridResult {
        datasets,
        config: config.clone(),
    }
}

/// Run one dataset row.
pub fn run_dataset(ds: &Dataset, config: &GridConfig) -> DatasetResult {
    let prep = prepare(ds);
    let eval_seed = config.seed.wrapping_add(1000);
    let initial = evaluate_frame(&prep.frame, &prep.target, eval_seed)
        .expect("initial evaluation must succeed");
    let mut cells = Vec::new();
    for method in MethodName::all() {
        let cell = if method == MethodName::Caafe {
            run_caafe_cell(ds, &prep, config, eval_seed)
        } else {
            run_simple_cell(method, ds, &prep, config, eval_seed)
        };
        cells.push((method, cell));
    }
    DatasetResult {
        name: ds.name.to_string(),
        initial,
        cells,
    }
}

fn run_simple_cell(
    method: MethodName,
    ds: &Dataset,
    prep: &crate::prep::Prepared,
    config: &GridConfig,
    eval_seed: u64,
) -> CellOutcome {
    let start = stopwatch("bench.grid.cell");
    let out = run_method(
        method,
        &prep.frame,
        ds,
        &prep.categorical,
        ModelKind::RF,
        config.method_deadline,
        config.seed,
    );
    let elapsed = start.elapsed();
    if let Some(f) = out.failure {
        return CellOutcome {
            scores: None,
            excluded_models: Vec::new(),
            note: Some(format!("failed: {f}")),
            elapsed,
            generated: out.generated_count,
            selected: out.selected_count,
        };
    }
    if out.timed_out {
        return CellOutcome {
            scores: None,
            excluded_models: ModelKind::all().to_vec(),
            note: Some("timeout".into()),
            elapsed,
            generated: out.generated_count,
            selected: out.selected_count,
        };
    }
    let scores = evaluate_frame(&out.frame, &prep.target, eval_seed);
    CellOutcome {
        scores,
        excluded_models: Vec::new(),
        note: None,
        elapsed,
        generated: out.generated_count,
        selected: out.selected_count,
    }
}

/// CAAFE validates with the downstream model, so it runs once per model —
/// slow models (the DNN) can time out individually, exactly as the paper
/// reports on the large datasets.
fn run_caafe_cell(
    ds: &Dataset,
    prep: &crate::prep::Prepared,
    config: &GridConfig,
    eval_seed: u64,
) -> CellOutcome {
    let mut per_model = Vec::new();
    let mut excluded = Vec::new();
    let mut elapsed = Duration::ZERO;
    let mut generated = 0usize;
    let mut selected = 0usize;
    for kind in ModelKind::all() {
        let start = stopwatch("bench.grid.cell");
        let out = run_method(
            MethodName::Caafe,
            &prep.frame,
            ds,
            &prep.categorical,
            kind,
            config.method_deadline,
            config.seed,
        );
        elapsed += start.elapsed();
        generated = generated.max(out.generated_count);
        selected = selected.max(out.selected_count);
        if let Some(f) = out.failure {
            // A crash poisons the whole CAAFE column for this dataset —
            // the paper's "-" on Diabetes.
            return CellOutcome {
                scores: None,
                excluded_models: Vec::new(),
                note: Some(format!("failed: {f}")),
                elapsed,
                generated,
                selected,
            };
        }
        if out.timed_out {
            excluded.push(kind);
            continue;
        }
        if let Some(s) = evaluate_frame_models(&out.frame, &prep.target, &[kind], eval_seed) {
            per_model.extend(s.scores);
        }
    }
    if per_model.is_empty() {
        return CellOutcome {
            scores: None,
            excluded_models: excluded,
            note: Some("timeout".into()),
            elapsed,
            generated,
            selected,
        };
    }
    CellOutcome {
        scores: Some(ModelScores { scores: per_model }),
        excluded_models: excluded,
        note: None,
        elapsed,
        generated,
        selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_runs_end_to_end() {
        let config = GridConfig {
            scale: 0.03,
            seed: 7,
            method_deadline: Duration::from_secs(30),
            datasets: vec!["Tennis".into(), "Lawschool".into()],
        };
        let grid = run_grid(&config);
        assert_eq!(grid.datasets.len(), 2);
        for row in &grid.datasets {
            assert!(row.initial.average() > 50.0, "{}", row.name);
            assert_eq!(row.cells.len(), 4);
            // SMARTFEAT never fails on these datasets.
            let (m, sf) = &row.cells[0];
            assert_eq!(*m, MethodName::SmartFeat);
            assert!(sf.scores.is_some(), "{:?}", sf.note);
        }
    }
}
