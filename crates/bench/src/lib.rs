//! # smartfeat-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper's evaluation (Section 4):
//!
//! | Artifact | Driver |
//! |---|---|
//! | Figure 1 (row-level vs feature-level interaction cost) | [`fig1`] |
//! | Table 3 (dataset statistics) | [`tables::table3`] |
//! | Table 4 (average AUC grid) | [`grid`] → [`tables::render_table4`] |
//! | Table 5 (median AUC grid) | [`grid`] → [`tables::render_table5`] |
//! | §4.2 efficiency (wall-clock per method) | [`tables::efficiency`] |
//! | Table 6 (top-10 feature importance on Tennis) | [`tables::table6`] |
//! | Table 7 (operator ablation on Tennis) | [`tables::table7`] |
//! | §4.2 feature-description impact | [`tables::descriptions`] |
//!
//! The `repro` binary (`cargo run --release -p smartfeat-bench --bin repro`)
//! wires these to a CLI; the benches under `benches/` measure the same
//! drivers at fixed small scales on the in-repo [`harness`] (a
//! Criterion-compatible API without the registry dependency).

pub mod evalml;
pub mod fig1;
pub mod fmt;
pub mod grid;
pub mod harness;
pub mod methods;
pub mod prep;
pub mod tables;

pub use grid::{GridConfig, GridResult};
pub use harness::{Bencher, BenchmarkGroup, BenchmarkId, Criterion};
pub use methods::MethodName;
