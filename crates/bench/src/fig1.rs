//! Figure 1 reproduction: **row-level** vs **feature-level** FM
//! interaction cost.
//!
//! Row-level (the prevailing strategy the paper argues against): serialize
//! *every row* with the new feature masked and ask the FM to complete it —
//! one API call per row, prompt size proportional to the attribute count.
//!
//! Feature-level (SMARTFEAT): the operator selector and function generator
//! exchange a constant number of messages per feature; even the
//! row-completion fallback is memoized per *distinct key*, not per row.

use smartfeat::prompts;
use smartfeat::{SmartFeat, SmartFeatConfig};
use smartfeat_datasets::insurance;
use smartfeat_fm::{FoundationModel, SimulatedFm, UsageSnapshot};

/// Measured interaction costs at one dataset size.
#[derive(Debug, Clone)]
pub struct InteractionCosts {
    /// Dataset rows.
    pub rows: usize,
    /// Row-level completion of one knowledge feature over every row.
    pub row_level: UsageSnapshot,
    /// A full SMARTFEAT run (all operator families, all features).
    pub feature_level: UsageSnapshot,
    /// Features SMARTFEAT produced within that budget.
    pub features_generated: usize,
}

/// Compare the two interaction styles on the insurance example at `rows`.
pub fn compare(rows: usize, seed: u64) -> InteractionCosts {
    let ds = insurance::generate(rows, seed);

    // Row-level: one masked completion per row, full row serialized.
    let row_fm = SimulatedFm::gpt35(seed);
    let feature_cols: Vec<&str> = ds
        .frame
        .column_names()
        .into_iter()
        .filter(|n| *n != ds.target)
        .collect();
    for i in 0..ds.frame.n_rows() {
        let fields: Vec<(String, String)> = feature_cols
            .iter()
            .map(|&c| {
                (
                    c.to_string(),
                    ds.frame.column(c).expect("exists").get(i).render(),
                )
            })
            .collect();
        let prompt = prompts::row_completion(&fields, "City_population_density");
        row_fm.complete(&prompt).expect("no budget set");
    }
    let row_level = row_fm.meter().snapshot();

    // Feature-level: the full SMARTFEAT pipeline.
    let selector_fm = SimulatedFm::gpt4(seed);
    let generator_fm = SimulatedFm::gpt35(seed.wrapping_add(1));
    let tool = SmartFeat::new(&selector_fm, &generator_fm, SmartFeatConfig::default());
    let report = tool
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("smartfeat runs on the insurance example");
    let feature_level = report.total_usage();

    InteractionCosts {
        rows,
        row_level,
        feature_level,
        features_generated: report.generated.len(),
    }
}

/// The sweep of sizes printed for Figure 1.
pub fn default_sweep() -> Vec<usize> {
    vec![100, 1_000, 10_000, 41_189]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_level_calls_scale_with_rows_feature_level_does_not() {
        let small = compare(100, 3);
        let large = compare(400, 3);
        assert_eq!(small.row_level.calls, 100);
        assert_eq!(large.row_level.calls, 400);
        // Feature-level call count is row-count independent (same schema).
        assert_eq!(small.feature_level.calls, large.feature_level.calls);
        assert!(large.feature_level.calls < 100, "feature-level stays flat");
        assert!(small.features_generated > 0);
    }

    #[test]
    fn row_level_cost_overtakes_feature_level_with_scale() {
        // The crossover the paper's Figure 1 argues: per-row completion
        // cost grows linearly while the feature-level pipeline is flat, so
        // the row/feature cost ratio must grow with the dataset.
        let small = compare(100, 1);
        let large = compare(800, 1);
        let ratio = |c: &InteractionCosts| c.row_level.cost_usd / c.feature_level.cost_usd;
        assert!(
            ratio(&large) > 6.0 * ratio(&small),
            "cost ratio {} → {}",
            ratio(&small),
            ratio(&large)
        );
        // Sequential latency already favors feature-level at modest sizes.
        assert!(large.row_level.latency > large.feature_level.latency);
        // And the token volume scales with rows only on the row-level side;
        // feature-level tokens move only marginally (the data card prints
        // slightly different distinct-value counts), never with row count.
        assert!(large.row_level.total_tokens() > 7 * small.row_level.total_tokens());
        let (s, l) = (
            small.feature_level.total_tokens() as f64,
            large.feature_level.total_tokens() as f64,
        );
        assert!((l - s).abs() / s < 0.05, "feature-level tokens {s} → {l}");
    }
}
