//! Method registry: SMARTFEAT (adapter over the core pipeline) plus the
//! three baselines, behind one enum the grid driver iterates.

use std::time::Duration;

use smartfeat::{SmartFeat, SmartFeatConfig};
use smartfeat_baselines::{AfeMethod, AutoFeat, Caafe, Featuretools, MethodOutput};
use smartfeat_datasets::Dataset;
use smartfeat_fm::SimulatedFm;
use smartfeat_frame::DataFrame;
use smartfeat_ml::ModelKind;

/// The methods compared in Tables 4–6, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodName {
    /// SMARTFEAT (this paper).
    SmartFeat,
    /// CAAFE.
    Caafe,
    /// Featuretools / DSM.
    Featuretools,
    /// AutoFeat.
    AutoFeat,
}

impl MethodName {
    /// All methods in table order.
    pub fn all() -> [MethodName; 4] {
        [
            MethodName::SmartFeat,
            MethodName::Caafe,
            MethodName::Featuretools,
            MethodName::AutoFeat,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MethodName::SmartFeat => "SMARTFEAT",
            MethodName::Caafe => "CAAFE",
            MethodName::Featuretools => "Featuretools",
            MethodName::AutoFeat => "AutoFeat",
        }
    }
}

/// Run SMARTFEAT over a prepared frame, with a configurable operator mask
/// (Table 7) and an optional names-only agenda (the description ablation).
pub fn run_smartfeat(
    df: &DataFrame,
    ds: &Dataset,
    config: SmartFeatConfig,
    names_only: bool,
    seed: u64,
) -> MethodOutput {
    let selector_fm = SimulatedFm::gpt4(seed);
    let generator_fm = SimulatedFm::gpt35(seed.wrapping_add(0x9e3779b9));
    let agenda = if names_only {
        ds.agenda_names_only("RF")
    } else {
        ds.agenda("RF")
    };
    let tool = SmartFeat::new(&selector_fm, &generator_fm, config);
    match tool.run(df, &agenda) {
        Ok(report) => MethodOutput {
            selected_count: report.generated.len(),
            generated_count: report.generated.len() + report.skipped.len(),
            new_features: report.generated.iter().map(|g| g.name.clone()).collect(),
            frame: report.frame,
            timed_out: false,
            failure: None,
        },
        Err(e) => {
            let mut out = MethodOutput::passthrough(df);
            out.failure = Some(e.to_string());
            out
        }
    }
}

/// Run one baseline (or SMARTFEAT with defaults) over a prepared frame.
/// CAAFE validates with `caafe_validation_model` (the paper validates with
/// the downstream model, which is why its DNN runs time out on large data).
pub fn run_method(
    method: MethodName,
    df: &DataFrame,
    ds: &Dataset,
    categorical: &[String],
    caafe_validation_model: ModelKind,
    deadline: Duration,
    seed: u64,
) -> MethodOutput {
    match method {
        MethodName::SmartFeat => run_smartfeat(df, ds, SmartFeatConfig::default(), false, seed),
        MethodName::Caafe => {
            let fm = SimulatedFm::gpt4(seed.wrapping_add(17));
            let caafe = Caafe::new(&fm, ds.agenda("RF"), caafe_validation_model, seed);
            caafe.run(df, ds.target, categorical, deadline)
        }
        MethodName::Featuretools => {
            Featuretools::default().run(df, ds.target, categorical, deadline)
        }
        MethodName::AutoFeat => AutoFeat::default().run(df, ds.target, categorical, deadline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;

    #[test]
    fn all_methods_run_on_small_tennis() {
        let ds = smartfeat_datasets::by_name("Tennis", 250, 3).unwrap();
        let prep = prepare(&ds);
        for method in MethodName::all() {
            let out = run_method(
                method,
                &prep.frame,
                &ds,
                &prep.categorical,
                ModelKind::LR,
                Duration::from_secs(60),
                11,
            );
            assert!(
                out.failure.is_none(),
                "{} failed: {:?}",
                method.name(),
                out.failure
            );
            assert!(out.frame.has_column(ds.target));
        }
    }

    #[test]
    fn smartfeat_generates_on_adult() {
        let ds = smartfeat_datasets::by_name("Adult", 400, 5).unwrap();
        let prep = prepare(&ds);
        let out = run_smartfeat(&prep.frame, &ds, SmartFeatConfig::default(), false, 3);
        assert!(out.selected_count > 0, "no features generated");
        assert!(out
            .new_features
            .iter()
            .any(|f| f.starts_with("GroupBy_") || f.contains("Log")));
    }
}
