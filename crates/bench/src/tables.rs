//! Per-table drivers and renderers.

use std::time::Duration;

use smartfeat::config::{OperatorFamily, OperatorMask};
use smartfeat::SmartFeatConfig;
use smartfeat_ml::select::{rank_features, top_k_new_fraction, SelectionMetric};
use smartfeat_ml::ModelKind;

use crate::evalml::{evaluate_frame, matrix_and_labels};
use crate::fmt::{auc_cell, duration_cell, render_table};
use crate::grid::GridResult;
use crate::methods::{run_method, run_smartfeat, MethodName};
use crate::prep::prepare;

/// Table 3: dataset statistics.
pub fn table3(scale: f64, seed: u64) -> String {
    let header = vec![
        "".to_string(),
        "# of cat. attr".to_string(),
        "# of num. attr".to_string(),
        "# of rows".to_string(),
        "field".to_string(),
    ];
    let rows: Vec<Vec<String>> = smartfeat_datasets::all_scaled(scale, seed)
        .iter()
        .map(|ds| {
            let (cat, num) = ds.shape_counts();
            vec![
                ds.name.to_string(),
                cat.to_string(),
                num.to_string(),
                ds.frame.n_rows().to_string(),
                ds.field.to_string(),
            ]
        })
        .collect();
    render_table(&header, &rows)
}

fn grid_table(grid: &GridResult, median: bool) -> String {
    let mut header = vec!["Methods".to_string()];
    for row in &grid.datasets {
        header.push(row.name.clone());
    }
    let mut rows = Vec::new();
    let initial_row: Vec<String> = std::iter::once("Initial AUC".to_string())
        .chain(grid.datasets.iter().map(|d| {
            let v = if median {
                d.initial.median()
            } else {
                d.initial.average()
            };
            format!("{v:.2}")
        }))
        .collect();
    rows.push(initial_row);
    for (i, method) in MethodName::all().into_iter().enumerate() {
        let mut row = vec![method.name().to_string()];
        for d in &grid.datasets {
            let (_, cell) = &d.cells[i];
            let initial = if median {
                d.initial.median()
            } else {
                d.initial.average()
            };
            let text = match (&cell.scores, &cell.note) {
                (Some(s), _) => {
                    let v = if median { s.median() } else { s.average() };
                    let mut t = auc_cell(v, initial);
                    if !cell.excluded_models.is_empty() {
                        t.push_str(&format!(" [excl. {}]", names(&cell.excluded_models)));
                    }
                    t
                }
                (None, Some(note)) if note == "timeout" => "- (timeout)".to_string(),
                (None, Some(_)) => "-".to_string(),
                (None, None) => "-".to_string(),
            };
            row.push(text);
        }
        rows.push(row);
    }
    render_table(&header, &rows)
}

fn names(kinds: &[ModelKind]) -> String {
    kinds.iter().map(|k| k.name()).collect::<Vec<_>>().join(",")
}

/// Table 4: average-AUC grid.
pub fn render_table4(grid: &GridResult) -> String {
    grid_table(grid, false)
}

/// Table 5: median-AUC grid.
pub fn render_table5(grid: &GridResult) -> String {
    grid_table(grid, true)
}

/// §4.2 efficiency: wall-clock per (dataset, method), with timeout notes.
pub fn efficiency(grid: &GridResult) -> String {
    let mut header = vec!["Methods".to_string()];
    for d in &grid.datasets {
        header.push(d.name.clone());
    }
    let mut rows = Vec::new();
    for (i, method) in MethodName::all().into_iter().enumerate() {
        let mut row = vec![method.name().to_string()];
        for d in &grid.datasets {
            let (_, cell) = &d.cells[i];
            let mut text = duration_cell(cell.elapsed);
            if cell.note.as_deref() == Some("timeout") {
                text.push_str(" (timeout)");
            } else if !cell.excluded_models.is_empty() {
                text.push_str(&format!(" ({} timeout)", names(&cell.excluded_models)));
            }
            row.push(text);
        }
        rows.push(row);
    }
    render_table(&header, &rows)
}

/// Table 6: percentage of new features among the top-10 under IG/RFE/FI,
/// on Tennis.
pub fn table6(scale: f64, seed: u64, deadline: Duration) -> String {
    let rows_n = ((944.0 * scale) as usize).max(200);
    let ds = smartfeat_datasets::by_name("Tennis", rows_n, seed).expect("tennis exists");
    let prep = prepare(&ds);
    let mut header = vec!["".to_string()];
    let mut counts_row = vec!["# generated features".to_string()];
    let mut metric_rows: Vec<Vec<String>> = SelectionMetric::all()
        .iter()
        .map(|m| vec![format!("{}@10", m.name())])
        .collect();

    for method in MethodName::all() {
        header.push(method.name().to_string());
        let out = run_method(
            method,
            &prep.frame,
            &ds,
            &prep.categorical,
            ModelKind::LR,
            deadline,
            seed,
        );
        if method == MethodName::AutoFeat || method == MethodName::Featuretools {
            counts_row.push(format!(
                "{} (sel-{})",
                out.generated_count, out.selected_count
            ));
        } else {
            counts_row.push(out.selected_count.to_string());
        }
        let Some((x, y)) = matrix_and_labels(&out.frame, &prep.target) else {
            for r in metric_rows.iter_mut() {
                r.push("-".into());
            }
            continue;
        };
        let feature_names: Vec<&str> = out
            .frame
            .column_names()
            .into_iter()
            .filter(|n| *n != prep.target)
            .collect();
        let is_new: Vec<bool> = feature_names
            .iter()
            .map(|n| out.new_features.iter().any(|f| f == n))
            .collect();
        for (metric, row) in SelectionMetric::all().iter().zip(metric_rows.iter_mut()) {
            match rank_features(*metric, &x, &y, seed) {
                Ok(ranked) => {
                    let frac = top_k_new_fraction(&ranked, 10, &is_new);
                    let all_new = out.new_features.len() < 10
                        && (frac * 10.0).round() as usize >= out.new_features.len();
                    let suffix = if all_new && !out.new_features.is_empty() {
                        " (all)"
                    } else {
                        ""
                    };
                    row.push(format!("{:.0}%{}", frac * 100.0, suffix));
                }
                Err(_) => row.push("-".into()),
            }
        }
    }
    let mut rows = vec![counts_row];
    rows.extend(metric_rows);
    render_table(&header, &rows)
}

/// Table 7: operator ablation on Tennis across the five models.
pub fn table7(scale: f64, seed: u64) -> String {
    let rows_n = ((944.0 * scale) as usize).max(200);
    let ds = smartfeat_datasets::by_name("Tennis", rows_n, seed).expect("tennis exists");
    let prep = prepare(&ds);
    let eval_seed = seed.wrapping_add(1000);

    let masks: Vec<(String, OperatorMask)> = vec![
        ("Initial".into(), OperatorMask::none()),
        ("+Unary".into(), OperatorMask::only(OperatorFamily::Unary)),
        ("+Binary".into(), OperatorMask::only(OperatorFamily::Binary)),
        (
            "+High-order".into(),
            OperatorMask::only(OperatorFamily::HighOrder),
        ),
        (
            "+Extractor".into(),
            OperatorMask::only(OperatorFamily::Extractor),
        ),
        ("all".into(), OperatorMask::all()),
    ];

    let mut header = vec!["".to_string()];
    for (label, _) in &masks {
        header.push(label.clone());
    }
    let mut per_model: Vec<Vec<String>> = ModelKind::all()
        .iter()
        .map(|m| vec![m.name().to_string()])
        .collect();
    let mut avg_row = vec!["Avg".to_string()];

    for (_, mask) in &masks {
        let config = SmartFeatConfig {
            operators: *mask,
            ..SmartFeatConfig::default()
        };
        let out = run_smartfeat(&prep.frame, &ds, config, false, seed);
        let scores =
            evaluate_frame(&out.frame, &prep.target, eval_seed).expect("evaluation succeeds");
        for (model, row) in ModelKind::all().iter().zip(per_model.iter_mut()) {
            row.push(format!("{:.2}", scores.get(*model).unwrap_or(f64::NAN)));
        }
        avg_row.push(format!("{:.2}", scores.average()));
    }
    let mut rows = per_model;
    rows.push(avg_row);
    render_table(&header, &rows)
}

/// Design-choice ablations beyond the operator families (DESIGN.md §5):
/// the feature-evaluation filter, the drop heuristic, the
/// high-confidence-only cut, malformed-output retries, and the
/// FM-feature-removal extension, on one category-rich and one all-numeric
/// dataset.
pub fn ablations(scale: f64, seed: u64) -> String {
    let variants: Vec<(&str, SmartFeatConfig)> = vec![
        ("default", SmartFeatConfig::default()),
        (
            "no feature filter",
            SmartFeatConfig {
                feature_filter: false,
                ..SmartFeatConfig::default()
            },
        ),
        (
            "no drop heuristic",
            SmartFeatConfig {
                drop_heuristic: false,
                ..SmartFeatConfig::default()
            },
        ),
        (
            "admit medium confidence",
            SmartFeatConfig {
                high_confidence_only: false,
                ..SmartFeatConfig::default()
            },
        ),
        (
            "no malformed retries",
            SmartFeatConfig {
                retry_malformed: 0,
                ..SmartFeatConfig::default()
            },
        ),
        (
            "with FM feature removal",
            SmartFeatConfig {
                fm_feature_removal: true,
                ..SmartFeatConfig::default()
            },
        ),
    ];
    let mut header = vec!["Configuration".to_string()];
    let datasets = ["Adult", "Tennis"];
    for d in datasets {
        header.push(format!("{d} avg AUC"));
        header.push(format!("{d} # features"));
    }
    let prepared: Vec<_> = datasets
        .iter()
        .map(|name| {
            let rows = smartfeat_datasets::PAPER_ROWS
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| ((*r as f64 * scale) as usize).max(200))
                .expect("known dataset");
            let ds = smartfeat_datasets::by_name(name, rows, seed).expect("dataset");
            let prep = prepare(&ds);
            (ds, prep)
        })
        .collect();
    let mut rows_out = Vec::new();
    for (label, config) in variants {
        let mut row = vec![label.to_string()];
        for (ds, prep) in &prepared {
            let out = run_smartfeat(&prep.frame, ds, config.clone(), false, seed);
            let auc = evaluate_frame(&out.frame, &prep.target, seed.wrapping_add(1000))
                .map(|s| s.average())
                .unwrap_or(f64::NAN);
            row.push(format!("{auc:.2}"));
            row.push(out.selected_count.to_string());
        }
        rows_out.push(row);
    }
    render_table(&header, &rows_out)
}

/// §4.2 feature-description impact: full data card vs names-only, Tennis.
pub fn descriptions(scale: f64, seed: u64) -> String {
    let rows_n = ((944.0 * scale) as usize).max(200);
    let ds = smartfeat_datasets::by_name("Tennis", rows_n, seed).expect("tennis exists");
    let prep = prepare(&ds);
    let eval_seed = seed.wrapping_add(1000);

    let run = |names_only: bool| {
        let out = run_smartfeat(
            &prep.frame,
            &ds,
            SmartFeatConfig::default(),
            names_only,
            seed,
        );
        let scores =
            evaluate_frame(&out.frame, &prep.target, eval_seed).expect("evaluation succeeds");
        (out.selected_count, scores)
    };
    let (full_count, full) = run(false);
    let (bare_count, bare) = run(true);

    let header = vec![
        "Input".to_string(),
        "# generated".to_string(),
        "Avg AUC".to_string(),
        "Median AUC".to_string(),
    ];
    let pct = |v: f64, base: f64| format!("{v:.2} ({:+.1}%)", (v - base) / base * 100.0);
    let rows = vec![
        vec![
            "Full descriptions".to_string(),
            full_count.to_string(),
            format!("{:.2}", full.average()),
            format!("{:.2}", full.median()),
        ],
        vec![
            "Names only".to_string(),
            bare_count.to_string(),
            pct(bare.average(), full.average()),
            pct(bare.median(), full.median()),
        ],
    ];
    render_table(&header, &rows)
}

/// Figure 1 rendering: one row per dataset size.
pub fn fig1(sizes: &[usize], seed: u64) -> String {
    let header = vec![
        "rows".to_string(),
        "row-level calls".to_string(),
        "row-level tokens".to_string(),
        "row-level $".to_string(),
        "row-level latency".to_string(),
        "feat-level calls".to_string(),
        "feat-level tokens".to_string(),
        "feat-level $".to_string(),
        "feat-level latency".to_string(),
        "# features".to_string(),
    ];
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let c = crate::fig1::compare(n, seed);
            vec![
                n.to_string(),
                c.row_level.calls.to_string(),
                c.row_level.total_tokens().to_string(),
                format!("{:.2}", c.row_level.cost_usd),
                duration_cell(c.row_level.latency),
                c.feature_level.calls.to_string(),
                c.feature_level.total_tokens().to_string(),
                format!("{:.4}", c.feature_level.cost_usd),
                duration_cell(c.feature_level.latency),
                c.features_generated.to_string(),
            ]
        })
        .collect();
    render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_lists_eight_datasets() {
        let t = table3(0.03, 1);
        assert_eq!(t.lines().count(), 10); // header + rule + 8 rows
        assert!(t.contains("Diabetes"));
        assert!(t.contains("Sports"));
    }

    #[test]
    fn table7_has_six_columns_and_avg() {
        let t = table7(0.25, 5);
        assert!(t.contains("+Extractor"));
        assert!(t.contains("Avg"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 8); // header + rule + 5 models + avg
    }

    #[test]
    fn descriptions_compares_two_inputs() {
        let t = descriptions(0.2, 3);
        assert!(t.contains("Names only"));
        assert!(t.contains("Full descriptions"));
    }
}
