//! Substrate microbenchmarks: the frame operations, ML model fits, and
//! simulated-FM completions everything else is built on.
//!
//! ci-baseline: BENCH_PR6.json

use std::collections::BTreeMap;

use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartfeat_fm::{FoundationModel, SimulatedFm};
use smartfeat_frame::ops::{
    bucketize, get_dummies, groupby_transform, normalize, AggFunc, NormKind,
};
use smartfeat_frame::{Column, DataFrame};
use smartfeat_ml::{roc_auc, Matrix, ModelKind};

fn frame_of(n: usize) -> DataFrame {
    DataFrame::from_columns(vec![
        Column::from_f64("v", (0..n).map(|i| (i % 97) as f64).collect()),
        Column::from_strs("g", (0..n).map(|i| Some(format!("g{}", i % 23))).collect()),
    ])
    .expect("valid frame")
}

fn bench_frame_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_ops");
    for &n in &[1_000usize, 10_000] {
        let df = frame_of(n);
        group.bench_with_input(BenchmarkId::new("groupby_mean", n), &df, |b, df| {
            b.iter(|| groupby_transform(df, &["g"], "v", AggFunc::Mean, "m").expect("runs"))
        });
        let v = df.column("v").expect("exists").clone();
        group.bench_with_input(BenchmarkId::new("bucketize", n), &v, |b, v| {
            b.iter(|| bucketize(v, &[10.0, 30.0, 60.0, 90.0], "b").expect("runs"))
        });
        let g = df.column("g").expect("exists").clone();
        group.bench_with_input(BenchmarkId::new("get_dummies", n), &g, |b, g| {
            b.iter(|| get_dummies(g, 30).expect("runs"))
        });
    }
    group.finish();
}

fn training_data(n: usize, d: usize) -> (Matrix, Vec<u8>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..d).map(|j| ((i * (j + 3)) % 29) as f64).collect())
        .collect();
    let y: Vec<u8> = (0..n).map(|i| u8::from((i * 5) % 29 >= 14)).collect();
    (Matrix::from_rows(rows).expect("rect"), y)
}

fn bench_model_fits(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fit_2000x10");
    group.sample_size(10);
    let (x, y) = training_data(2000, 10);
    for kind in ModelKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let mut m = k.build(7);
                m.fit(&x, &y).expect("fits");
                let p = m.predict_proba(&x).expect("predicts");
                roc_auc(&y, &p)
            })
        });
    }
    group.finish();
}

fn bench_fm_completions(c: &mut Criterion) {
    let card = "Dataset features:\n\
        - Age (int, distinct=47): Age of the policyholder in years\n\
        - City (str, distinct=6): City where the policyholder lives\n\
        - Claim (int, distinct=2): Whether a claim was filed recently\n\
        Prediction target: Safe\n\
        Downstream model: RF\n";
    let prompts = [
        (
            "unary_proposal",
            format!(
                "{card}Consider the unary operators on the attribute 'Age' that can \
                     generate helpful features to predict Safe."
            ),
        ),
        (
            "highorder_sample",
            format!(
                "{card}Generate a groupby feature for predicting Safe by applying \
                     'df.groupby(groupby_col)[agg_col].transform(function)'."
            ),
        ),
        (
            "row_completion",
            "Complete the value of the last field.\nCity: SF, Density: ?".to_string(),
        ),
    ];
    let mut group = c.benchmark_group("fm_complete");
    for (label, prompt) in &prompts {
        let fm = SimulatedFm::gpt4(1);
        group.bench_with_input(BenchmarkId::from_parameter(*label), prompt, |b, p| {
            b.iter(|| fm.complete(p).expect("unbudgeted").completion_tokens)
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Columnar engine v2 vs the PR-4 BTreeMap substrate.
//
// The `*_btree` reference bodies reproduce the pre-v2 implementations
// (sorted-map probing over owned string keys) against the same data, so the
// `*_v2` / `*_btree` label pairs in the bench JSON document the speedup the
// dictionary codes + StableMap index bought.
// ---------------------------------------------------------------------------

/// PR-4-style groupby mean: BTreeMap keyed by owned strings.
fn btree_groupby_mean(df: &DataFrame) -> Vec<Option<f64>> {
    let keys = df.column("g").expect("exists").keys_view();
    let vals = df
        .column("v")
        .expect("exists")
        .numeric_view()
        .expect("numeric");
    let mut agg: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for i in 0..keys.len() {
        if let (Some(k), Some(v)) = (keys.get(i), vals.get(i)) {
            let slot = agg.entry(k.to_string()).or_insert((0.0, 0));
            slot.0 += v;
            slot.1 += 1;
        }
    }
    (0..keys.len())
        .map(|i| {
            keys.get(i)
                .and_then(|k| agg.get(k).map(|&(s, c)| s / c as f64))
        })
        .collect()
}

/// PR-4-style factorize: first-seen codes through a BTreeMap.
fn btree_factorize(col: &Column) -> Vec<Option<i64>> {
    let keys = col.keys_view();
    let mut codes: BTreeMap<String, i64> = BTreeMap::new();
    let mut next = 0i64;
    (0..keys.len())
        .map(|i| {
            keys.get(i).map(|k| match codes.get(k) {
                Some(&c) => c,
                None => {
                    codes.insert(k.to_string(), next);
                    next += 1;
                    next - 1
                }
            })
        })
        .collect()
}

/// PR-4-style value counts: one owned string per row into a BTreeMap.
fn btree_value_counts(col: &Column) -> BTreeMap<String, usize> {
    let keys = col.keys_view();
    let mut counts = BTreeMap::new();
    for i in 0..keys.len() {
        if let Some(k) = keys.get(i) {
            *counts.entry(k.to_string()).or_insert(0usize) += 1;
        }
    }
    counts
}

/// PR-4-style realize stage, reproduced end to end on the v1 storage
/// shape: columns were `Vec<Option<f64>>`/`Vec<Option<i64>>` (Option-boxed
/// cells), each transform cloned its input column out of the frame,
/// materialized it with `numeric()`, and built Option-boxed output columns
/// (with `from_floats`' NaN-scrub pass). Each candidate then pays the
/// evaluation reads `check_new_column` makes — null fraction and
/// constantness — as Option-cell scans (given best-case v1 direct scans;
/// the shipped v1 `is_constant` rendered every row to a string). The v2
/// ops instead read the packed value buffer + null bitmap in place through
/// views, answer null counts by popcount, and scan constantness over the
/// packed slice.
fn copy_transforms_reference(stored: &[Option<f64>]) -> usize {
    // normalize(ZScore): clone + materialize + two stat passes + emit +
    // v1 `from_floats` NaN scrub.
    let xs: Vec<Option<f64>> = stored.to_vec();
    let present: Vec<f64> = xs.iter().copied().flatten().collect();
    let n = present.len().max(1) as f64;
    let mean = present.iter().sum::<f64>() / n;
    let var = present.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt();
    let z: Vec<Option<f64>> = xs.iter().map(|x| x.map(|x| (x - mean) / sd)).collect();
    let z_col: Vec<Option<f64>> = z.into_iter().map(|x| x.filter(|v| !v.is_nan())).collect();
    // bucketize: its own clone + materialize, then emit.
    let xs2: Vec<Option<f64>> = stored.to_vec();
    let bounds = [10.0, 30.0, 60.0, 90.0];
    let b_col: Vec<Option<i64>> = xs2
        .iter()
        .map(|x| x.map(|x| bounds.iter().filter(|&&b| x >= b).count() as i64))
        .collect();
    // Evaluation reads, v1 shape: null scan + first-present/all-equal scan
    // over Option cells, per candidate.
    let nulls =
        z_col.iter().filter(|x| x.is_none()).count() + b_col.iter().filter(|x| x.is_none()).count();
    let z_const = {
        let mut it = z_col.iter().flatten();
        match it.next() {
            None => true,
            Some(f) => it.all(|v| v == f),
        }
    };
    let b_const = {
        let mut it = b_col.iter().flatten();
        match it.next() {
            None => true,
            Some(f) => it.all(|v| v == f),
        }
    };
    z_col.len() + b_col.len() + nulls + usize::from(z_const) + usize::from(b_const)
}

/// v2 realize stage: the real ops reading through views, plus the real
/// evaluation reads (`null_count` popcount, `is_constant` packed scan).
fn view_transforms_v2(df: &DataFrame) -> usize {
    let col = df.column("v").expect("exists");
    let z = normalize(col, NormKind::ZScore, "z").expect("runs");
    let b = bucketize(col, &[10.0, 30.0, 60.0, 90.0], "b").expect("runs");
    let nulls = z.null_count() + b.null_count();
    z.len() + b.len() + nulls + usize::from(z.is_constant()) + usize::from(b.is_constant())
}

fn bench_index_v2(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_v2");
    for &n in &[1_000usize, 10_000] {
        let df = frame_of(n);
        group.bench_with_input(BenchmarkId::new("groupby_mean_v2", n), &df, |b, df| {
            b.iter(|| groupby_transform(df, &["g"], "v", AggFunc::Mean, "m").expect("runs"))
        });
        group.bench_with_input(BenchmarkId::new("groupby_mean_btree", n), &df, |b, df| {
            b.iter(|| btree_groupby_mean(df))
        });

        let g = df.column("g").expect("exists").clone();
        group.bench_with_input(BenchmarkId::new("factorize_v2", n), &df, |b, df| {
            b.iter(|| df.clone().factorize_strings())
        });
        group.bench_with_input(BenchmarkId::new("factorize_btree", n), &df, |b, df| {
            b.iter(|| {
                let f = df.clone();
                btree_factorize(f.column("g").expect("exists"))
            })
        });

        group.bench_with_input(BenchmarkId::new("value_counts_v2", n), &g, |b, g| {
            b.iter(|| g.value_counts())
        });
        group.bench_with_input(BenchmarkId::new("value_counts_btree", n), &g, |b, g| {
            b.iter(|| btree_value_counts(g))
        });

        group.bench_with_input(
            BenchmarkId::new("realize_transforms_v2", n),
            &df,
            |b, df| b.iter(|| view_transforms_v2(df)),
        );
        // The reference's input mirrors v1 column storage: Option-boxed cells.
        let stored_v1: Vec<Option<f64>> = df.column("v").expect("exists").to_f64();
        group.bench_with_input(
            BenchmarkId::new("realize_transforms_copy", n),
            &stored_v1,
            |b, stored| b.iter(|| copy_transforms_reference(stored)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_ops,
    bench_model_fits,
    bench_fm_completions,
    bench_index_v2,
);
criterion_main!(benches);
