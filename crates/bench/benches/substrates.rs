//! Substrate microbenchmarks: the frame operations, ML model fits, and
//! simulated-FM completions everything else is built on.

use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartfeat_fm::{FoundationModel, SimulatedFm};
use smartfeat_frame::ops::{bucketize, get_dummies, groupby_transform, AggFunc};
use smartfeat_frame::{Column, DataFrame};
use smartfeat_ml::{roc_auc, Matrix, ModelKind};

fn frame_of(n: usize) -> DataFrame {
    DataFrame::from_columns(vec![
        Column::from_f64("v", (0..n).map(|i| (i % 97) as f64).collect()),
        Column::from_strs("g", (0..n).map(|i| Some(format!("g{}", i % 23))).collect()),
    ])
    .expect("valid frame")
}

fn bench_frame_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_ops");
    for &n in &[1_000usize, 10_000] {
        let df = frame_of(n);
        group.bench_with_input(BenchmarkId::new("groupby_mean", n), &df, |b, df| {
            b.iter(|| groupby_transform(df, &["g"], "v", AggFunc::Mean, "m").expect("runs"))
        });
        let v = df.column("v").expect("exists").clone();
        group.bench_with_input(BenchmarkId::new("bucketize", n), &v, |b, v| {
            b.iter(|| bucketize(v, &[10.0, 30.0, 60.0, 90.0], "b").expect("runs"))
        });
        let g = df.column("g").expect("exists").clone();
        group.bench_with_input(BenchmarkId::new("get_dummies", n), &g, |b, g| {
            b.iter(|| get_dummies(g, 30).expect("runs"))
        });
    }
    group.finish();
}

fn training_data(n: usize, d: usize) -> (Matrix, Vec<u8>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..d).map(|j| ((i * (j + 3)) % 29) as f64).collect())
        .collect();
    let y: Vec<u8> = (0..n).map(|i| u8::from((i * 5) % 29 >= 14)).collect();
    (Matrix::from_rows(rows).expect("rect"), y)
}

fn bench_model_fits(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fit_2000x10");
    group.sample_size(10);
    let (x, y) = training_data(2000, 10);
    for kind in ModelKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let mut m = k.build(7);
                m.fit(&x, &y).expect("fits");
                let p = m.predict_proba(&x).expect("predicts");
                roc_auc(&y, &p)
            })
        });
    }
    group.finish();
}

fn bench_fm_completions(c: &mut Criterion) {
    let card = "Dataset features:\n\
        - Age (int, distinct=47): Age of the policyholder in years\n\
        - City (str, distinct=6): City where the policyholder lives\n\
        - Claim (int, distinct=2): Whether a claim was filed recently\n\
        Prediction target: Safe\n\
        Downstream model: RF\n";
    let prompts = [
        (
            "unary_proposal",
            format!(
                "{card}Consider the unary operators on the attribute 'Age' that can \
                     generate helpful features to predict Safe."
            ),
        ),
        (
            "highorder_sample",
            format!(
                "{card}Generate a groupby feature for predicting Safe by applying \
                     'df.groupby(groupby_col)[agg_col].transform(function)'."
            ),
        ),
        (
            "row_completion",
            "Complete the value of the last field.\nCity: SF, Density: ?".to_string(),
        ),
    ];
    let mut group = c.benchmark_group("fm_complete");
    for (label, prompt) in &prompts {
        let fm = SimulatedFm::gpt4(1);
        group.bench_with_input(BenchmarkId::from_parameter(*label), prompt, |b, p| {
            b.iter(|| fm.complete(p).expect("unbudgeted").completion_tokens)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_ops,
    bench_model_fits,
    bench_fm_completions
);
criterion_main!(benches);
