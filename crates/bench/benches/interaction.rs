//! Figure 1 microbenchmark: row-level vs feature-level FM interaction.
//!
//! The criterion series show wall-clock of the *driver* (simulated FM, so
//! microseconds per call); the accounted token/dollar/latency figures are
//! printed by `repro fig1`. The shape to look for: `row_level/*` grows
//! linearly with rows; `feature_level/*` is flat.

use smartfeat::prompts;
use smartfeat::{SmartFeat, SmartFeatConfig};
use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartfeat_datasets::insurance;
use smartfeat_fm::{FoundationModel, SimulatedFm};

fn bench_row_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_level");
    for &rows in &[50usize, 200, 800] {
        let ds = insurance::generate(rows, 1);
        let feature_cols: Vec<String> = ds
            .frame
            .column_names()
            .into_iter()
            .filter(|n| *n != ds.target)
            .map(str::to_string)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                let fm = SimulatedFm::gpt35(1);
                for i in 0..ds.frame.n_rows() {
                    let fields: Vec<(String, String)> = feature_cols
                        .iter()
                        .map(|col| {
                            (
                                col.clone(),
                                ds.frame.column(col).expect("exists").get(i).render(),
                            )
                        })
                        .collect();
                    let prompt = prompts::row_completion(&fields, "City_population_density");
                    fm.complete(&prompt).expect("unbudgeted");
                }
                fm.meter().snapshot().calls
            })
        });
    }
    group.finish();
}

fn bench_feature_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_level");
    group.sample_size(10);
    for &rows in &[50usize, 200, 800] {
        let ds = insurance::generate(rows, 1);
        let agenda = ds.agenda("RF");
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                let sel = SimulatedFm::gpt4(1);
                let gen = SimulatedFm::gpt35(2);
                let tool = SmartFeat::new(&sel, &gen, SmartFeatConfig::default());
                let report = tool.run(&ds.frame, &agenda).expect("runs");
                report.total_usage().calls
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_row_level, bench_feature_level);
criterion_main!(benches);
