//! Analyzer benchmarks for the sfcheck v3/v4 pipeline: per-file
//! lex+parse throughput, CFG construction over every parsed body, the
//! cross-file passes (symbol resolution, call graph, dataflow, taint,
//! stream registry, lock discipline) over a synthetic workspace, the
//! lock-pass interprocedural fixpoint on a lock-heavy tree, and the
//! end-to-end `run_check` cost cold vs warm — the pair behind the CI
//! `cache` step's warm-full-hit assertion and its loose ≥2x
//! best-of-three wall-clock bound. The blessed medians live in
//! `BENCH_PR10.json` (regenerate with `SMARTFEAT_BENCH_JSON=$PWD/BENCH_PR10.json
//! cargo bench -p smartfeat-bench --bench sfcheck`); CI's bench-smoke job
//! checks the benchmark set still matches that file's line count.
//!
//! ci-baseline: BENCH_PR10.json

use std::path::PathBuf;

use sfcheck::walker::{classify, crate_dir_of, SourceFile};
use sfcheck::{
    callgraph, cfg, dataflow, lexer, locks, parser, resolve, run_check, streams, taint,
    CheckOptions,
};
use smartfeat_bench::{criterion_group, criterion_main, Criterion};

/// A taint-flavored module body: sources, a helper chain, and a sink
/// call, so the benched text exercises the constructs the passes model.
const MODULE_TEMPLATE: &str = "\
pub fn source_NNN() -> String {\n\
    let raw = std::env::var(\"SMARTFEAT_KNOB\").unwrap_or_default();\n\
    decorate_NNN(raw)\n\
}\n\
pub fn decorate_NNN(s: String) -> String {\n\
    let mut out = String::new();\n\
    for part in s.split(',') {\n\
        out.push_str(part.trim());\n\
    }\n\
    out\n\
}\n\
pub fn dump_NNN(rows: &[u64]) {\n\
    let text: Vec<String> = rows.iter().map(|r| r.to_string()).collect();\n\
    write_csv(&text.join(\"\\n\"));\n\
}\n";

/// `count` template instances concatenated, names uniqued per instance.
fn synthetic_module(count: usize) -> String {
    let mut text = String::from("// sfcheck:output-sink\npub fn write_csv(text: &str) {}\n");
    for i in 0..count {
        text.push_str(&MODULE_TEMPLATE.replace("NNN", &i.to_string()));
    }
    text
}

fn source(rel: &str, text: String) -> SourceFile {
    SourceFile {
        rel_path: rel.to_string(),
        text,
        class: classify(rel),
        crate_dir: crate_dir_of(rel),
    }
}

fn manifest(rel: &str, name: &str) -> SourceFile {
    source(rel, format!("[package]\nname = \"{name}\"\n"))
}

/// A lock-flavored module body: a per-instance static acquired before
/// the shared one, plus a relay holding the shared lock across a call —
/// double-lock chains, order pairs, and the interprocedural fixpoint
/// all get real work.
const LOCK_TEMPLATE: &str = "\
static GATE_NNN: Mutex<u64> = Mutex::new(0);\n\
pub fn stage_NNN() {\n\
    let a = GATE_NNN.lock().unwrap();\n\
    let b = SHARED.lock().unwrap();\n\
    drop(b);\n\
    drop(a);\n\
}\n\
pub fn relay_NNN() {\n\
    let g = SHARED.lock().unwrap();\n\
    stage_NNN();\n\
    drop(g);\n\
}\n";

/// `count` lock-template instances behind one shared static.
fn synthetic_lock_module(count: usize) -> String {
    let mut text =
        String::from("use std::sync::Mutex;\nstatic SHARED: Mutex<u64> = Mutex::new(0);\n");
    for i in 0..count {
        text.push_str(&LOCK_TEMPLATE.replace("NNN", &i.to_string()));
    }
    text
}

fn bench_per_file(c: &mut Criterion) {
    let text = synthetic_module(64);
    c.bench_function("perfile/lex_parse_64_fns", |b| {
        b.iter(|| {
            let tokens = lexer::lex(&text);
            let tree = parser::parse(&tokens);
            (tokens.len(), tree.items.len())
        })
    });
}

/// Statement-level CFG construction for every body in a 193-fn file —
/// the fixed per-fn cost the v4 lock pass adds before any lint logic.
fn bench_cfg_build(c: &mut Criterion) {
    let manifests = vec![manifest("crates/core/Cargo.toml", "smartfeat")];
    let text = synthetic_module(64);
    let parsed = vec![(
        source("crates/core/src/lib.rs", text.clone()),
        parser::parse(&lexer::lex(&text)),
    )];
    let ws = resolve::build(parsed, &manifests);
    c.bench_function("cfg/build_all_bodies", |b| {
        b.iter(|| {
            let mut blocks = 0usize;
            for id in 0..ws.fns.len() {
                if let Some(body) = ws.body_of(id) {
                    blocks += cfg::Cfg::build(body).blocks.len();
                }
            }
            blocks
        })
    });
}

/// The serial cross-file phase on an eight-file, four-crate workspace:
/// everything `run_check` does after the parallel per-file scans.
fn bench_global_passes(c: &mut Criterion) {
    let manifests = vec![
        manifest("crates/core/Cargo.toml", "smartfeat"),
        manifest("crates/frame/Cargo.toml", "smartfeat-frame"),
        manifest("crates/ml/Cargo.toml", "smartfeat-ml"),
        manifest("crates/rng/Cargo.toml", "smartfeat-rng"),
    ];
    let files: Vec<SourceFile> = (0..8)
        .map(|i| {
            let dir = ["core", "frame", "ml", "rng"][i % 4];
            source(&format!("crates/{dir}/src/mod{i}.rs"), synthetic_module(16))
        })
        .collect();
    c.bench_function("global/passes_8_files", |b| {
        b.iter(|| {
            let parsed = files
                .iter()
                .map(|f| (f.clone(), parser::parse(&lexer::lex(&f.text))))
                .collect();
            let ws = resolve::build(parsed, &manifests);
            let cg = callgraph::build(&ws);
            let mut findings = dataflow::run_scoped(&ws, &cg, None);
            findings.extend(taint::run(&ws, None));
            findings.extend(taint::run_volatile(&ws));
            findings.extend(streams::run(&ws));
            findings.extend(locks::run(&ws, &cg, None));
            findings.len()
        })
    });
}

/// The lock pass alone — per-fn CFG fixpoints plus the interprocedural
/// held-lock summary fixpoint — on an eight-file lock-heavy workspace
/// (resolution and call graph prebuilt, so only `locks::run` is timed).
fn bench_lock_fixpoint(c: &mut Criterion) {
    let manifests = vec![
        manifest("crates/core/Cargo.toml", "smartfeat"),
        manifest("crates/frame/Cargo.toml", "smartfeat-frame"),
        manifest("crates/ml/Cargo.toml", "smartfeat-ml"),
        manifest("crates/rng/Cargo.toml", "smartfeat-rng"),
    ];
    let parsed = (0..8)
        .map(|i| {
            let dir = ["core", "frame", "ml", "rng"][i % 4];
            let f = source(
                &format!("crates/{dir}/src/mod{i}.rs"),
                synthetic_lock_module(16),
            );
            let tree = parser::parse(&lexer::lex(&f.text));
            (f, tree)
        })
        .collect();
    let ws = resolve::build(parsed, &manifests);
    let cg = callgraph::build(&ws);
    c.bench_function("locks/fixpoint_8_files", |b| {
        b.iter(|| locks::run(&ws, &cg, None).len())
    });
}

/// On-disk fixture for the end-to-end pair; lives under the system temp
/// dir so `cargo bench` never writes into the repo tree.
fn write_fixture() -> PathBuf {
    let root = std::env::temp_dir().join(format!("sfcheck-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let files = [
        (
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/*\"]\n".to_string(),
        ),
        (
            "crates/frame/Cargo.toml",
            "[package]\nname = \"smartfeat-frame\"\n".to_string(),
        ),
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"smartfeat\"\n".to_string(),
        ),
        ("crates/frame/src/lib.rs", synthetic_module(32)),
        ("crates/core/src/lib.rs", synthetic_module(32)),
    ];
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, text).expect("write fixture");
    }
    root
}

fn bench_end_to_end(c: &mut Criterion) {
    let root = write_fixture();

    c.bench_function("run_check/cold_no_cache", |b| {
        let mut opts = CheckOptions::new(&root);
        opts.no_cache = true;
        b.iter(|| run_check(&opts).expect("fixture scan runs").waived.len())
    });

    c.bench_function("run_check/warm_full", |b| {
        let opts = CheckOptions::new(&root);
        // Prime the cache; every timed iteration is then a warm-full hit.
        run_check(&opts).expect("priming run");
        b.iter(|| run_check(&opts).expect("fixture scan runs").waived.len())
    });

    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(
    benches,
    bench_per_file,
    bench_cfg_build,
    bench_global_passes,
    bench_lock_fixpoint,
    bench_end_to_end
);
criterion_main!(benches);
