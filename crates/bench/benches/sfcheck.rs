//! Analyzer benchmarks for the sfcheck v3 pipeline: per-file lex+parse
//! throughput, the cross-file passes (symbol resolution, call graph,
//! dataflow, taint, stream registry) over a synthetic workspace, and the
//! end-to-end `run_check` cost cold vs warm — the pair behind the CI
//! `cache` step's warm-full-hit assertion and its loose ≥2x
//! best-of-three wall-clock bound. The blessed medians live in
//! `BENCH_PR9.json` (regenerate with `SMARTFEAT_BENCH_JSON=$PWD/BENCH_PR9.json
//! cargo bench -p smartfeat-bench --bench sfcheck`); CI's bench-smoke job
//! checks the benchmark set still matches that file's line count.
//!
//! ci-baseline: BENCH_PR9.json

use std::path::PathBuf;

use sfcheck::walker::{classify, crate_dir_of, SourceFile};
use sfcheck::{
    callgraph, dataflow, lexer, parser, resolve, run_check, streams, taint, CheckOptions,
};
use smartfeat_bench::{criterion_group, criterion_main, Criterion};

/// A taint-flavored module body: sources, a helper chain, and a sink
/// call, so the benched text exercises the constructs the passes model.
const MODULE_TEMPLATE: &str = "\
pub fn source_NNN() -> String {\n\
    let raw = std::env::var(\"SMARTFEAT_KNOB\").unwrap_or_default();\n\
    decorate_NNN(raw)\n\
}\n\
pub fn decorate_NNN(s: String) -> String {\n\
    let mut out = String::new();\n\
    for part in s.split(',') {\n\
        out.push_str(part.trim());\n\
    }\n\
    out\n\
}\n\
pub fn dump_NNN(rows: &[u64]) {\n\
    let text: Vec<String> = rows.iter().map(|r| r.to_string()).collect();\n\
    write_csv(&text.join(\"\\n\"));\n\
}\n";

/// `count` template instances concatenated, names uniqued per instance.
fn synthetic_module(count: usize) -> String {
    let mut text = String::from("// sfcheck:output-sink\npub fn write_csv(text: &str) {}\n");
    for i in 0..count {
        text.push_str(&MODULE_TEMPLATE.replace("NNN", &i.to_string()));
    }
    text
}

fn source(rel: &str, text: String) -> SourceFile {
    SourceFile {
        rel_path: rel.to_string(),
        text,
        class: classify(rel),
        crate_dir: crate_dir_of(rel),
    }
}

fn manifest(rel: &str, name: &str) -> SourceFile {
    source(rel, format!("[package]\nname = \"{name}\"\n"))
}

fn bench_per_file(c: &mut Criterion) {
    let text = synthetic_module(64);
    c.bench_function("perfile/lex_parse_64_fns", |b| {
        b.iter(|| {
            let tokens = lexer::lex(&text);
            let tree = parser::parse(&tokens);
            (tokens.len(), tree.items.len())
        })
    });
}

/// The serial cross-file phase on an eight-file, four-crate workspace:
/// everything `run_check` does after the parallel per-file scans.
fn bench_global_passes(c: &mut Criterion) {
    let manifests = vec![
        manifest("crates/core/Cargo.toml", "smartfeat"),
        manifest("crates/frame/Cargo.toml", "smartfeat-frame"),
        manifest("crates/ml/Cargo.toml", "smartfeat-ml"),
        manifest("crates/rng/Cargo.toml", "smartfeat-rng"),
    ];
    let files: Vec<SourceFile> = (0..8)
        .map(|i| {
            let dir = ["core", "frame", "ml", "rng"][i % 4];
            source(&format!("crates/{dir}/src/mod{i}.rs"), synthetic_module(16))
        })
        .collect();
    c.bench_function("global/passes_8_files", |b| {
        b.iter(|| {
            let parsed = files
                .iter()
                .map(|f| (f.clone(), parser::parse(&lexer::lex(&f.text))))
                .collect();
            let ws = resolve::build(parsed, &manifests);
            let cg = callgraph::build(&ws);
            let mut findings = dataflow::run_scoped(&ws, &cg, None);
            findings.extend(taint::run(&ws, None));
            findings.extend(taint::run_volatile(&ws));
            findings.extend(streams::run(&ws));
            findings.len()
        })
    });
}

/// On-disk fixture for the end-to-end pair; lives under the system temp
/// dir so `cargo bench` never writes into the repo tree.
fn write_fixture() -> PathBuf {
    let root = std::env::temp_dir().join(format!("sfcheck-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let files = [
        (
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/*\"]\n".to_string(),
        ),
        (
            "crates/frame/Cargo.toml",
            "[package]\nname = \"smartfeat-frame\"\n".to_string(),
        ),
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"smartfeat\"\n".to_string(),
        ),
        ("crates/frame/src/lib.rs", synthetic_module(32)),
        ("crates/core/src/lib.rs", synthetic_module(32)),
    ];
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, text).expect("write fixture");
    }
    root
}

fn bench_end_to_end(c: &mut Criterion) {
    let root = write_fixture();

    c.bench_function("run_check/cold_no_cache", |b| {
        let mut opts = CheckOptions::new(&root);
        opts.no_cache = true;
        b.iter(|| run_check(&opts).expect("fixture scan runs").waived.len())
    });

    c.bench_function("run_check/warm_full", |b| {
        let opts = CheckOptions::new(&root);
        // Prime the cache; every timed iteration is then a warm-full hit.
        run_check(&opts).expect("priming run");
        b.iter(|| run_check(&opts).expect("fixture scan runs").waived.len())
    });

    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(
    benches,
    bench_per_file,
    bench_global_passes,
    bench_end_to_end
);
criterion_main!(benches);
