//! Thread-scaling sweep for the `smartfeat-par` pool.
//!
//! Sweeps 1/2/4/8 worker threads over the parallel-wired hot paths:
//! random-forest fit, extra-trees fit, and k-fold cross-validation. On a
//! multi-core host the forest series should show ≥1.5× speedup at 4
//! threads vs 1; on a single-core container every series is flat (the
//! pool degenerates to the serial loop). Scores and fitted models are
//! bit-identical across the sweep — only wall-clock moves.

use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartfeat_ml::{
    kfold_cv_auc_threaded, Classifier, ExtraTrees, Matrix, ModelKind, RandomForest,
};
use smartfeat_rng::Rng;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// A dense nonlinear training set big enough that per-tree work dominates
/// pool overhead (the ≥1.5× @ 4 threads criterion needs real work to split).
fn training_data(rows: usize, cols: usize) -> (Matrix, Vec<u8>) {
    let mut rng = Rng::seed_from_u64(0xB0A7);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_f64() * 10.0).collect())
        .collect();
    let y: Vec<u8> = data
        .iter()
        .map(|r| u8::from(r[0] * r[1] + r[2] > 30.0))
        .collect();
    (Matrix::from_rows(data).expect("rectangular"), y)
}

fn bench_forest_fit(c: &mut Criterion) {
    let (x, y) = training_data(2000, 20);
    let mut group = c.benchmark_group("forest_fit");
    group.sample_size(10);
    for &threads in &THREAD_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let mut rf = RandomForest::default_params(42).with_threads(t);
                rf.fit(&x, &y).expect("fits");
                rf.predict_proba(&x).expect("fitted").len()
            })
        });
    }
    group.finish();
}

fn bench_extra_trees_fit(c: &mut Criterion) {
    let (x, y) = training_data(2000, 20);
    let mut group = c.benchmark_group("extra_trees_fit");
    group.sample_size(10);
    for &threads in &THREAD_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let mut et = ExtraTrees::default_params(42).with_threads(t);
                et.fit(&x, &y).expect("fits");
                et.predict_proba(&x).expect("fitted").len()
            })
        });
    }
    group.finish();
}

fn bench_kfold_cv(c: &mut Criterion) {
    let (x, y) = training_data(600, 10);
    let mut group = c.benchmark_group("kfold_cv_rf");
    group.sample_size(10);
    for &threads in &THREAD_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| kfold_cv_auc_threaded(ModelKind::RF, &x, &y, 4, 7, t).expect("scores"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forest_fit,
    bench_extra_trees_fit,
    bench_kfold_cv
);
criterion_main!(benches);
