//! Table 7 microbenchmark: SMARTFEAT engineering cost per operator family
//! on Tennis. Shows where the FM-call budget goes: unary (one proposal per
//! attribute), the sampled families (budgeted), and the full pipeline.

use smartfeat::config::{OperatorFamily, OperatorMask};
use smartfeat::SmartFeatConfig;
use smartfeat_bench::methods::run_smartfeat;
use smartfeat_bench::prep::prepare;
use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let ds = smartfeat_datasets::by_name("Tennis", 300, 3).expect("tennis exists");
    let prep = prepare(&ds);
    let masks: Vec<(&str, OperatorMask)> = vec![
        ("unary", OperatorMask::only(OperatorFamily::Unary)),
        ("binary", OperatorMask::only(OperatorFamily::Binary)),
        ("high_order", OperatorMask::only(OperatorFamily::HighOrder)),
        ("extractor", OperatorMask::only(OperatorFamily::Extractor)),
        ("all", OperatorMask::all()),
    ];
    let mut group = c.benchmark_group("smartfeat_operators");
    group.sample_size(10);
    for (label, mask) in masks {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mask, |b, &m| {
            b.iter(|| {
                let config = SmartFeatConfig {
                    operators: m,
                    ..SmartFeatConfig::default()
                };
                run_smartfeat(&prep.frame, &ds, config, false, 5).selected_count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
