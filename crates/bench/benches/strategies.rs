//! Design-choice ablation (§3.2): the *proposal* strategy (one call
//! enumerating all candidates) vs the *sampling* strategy (one candidate
//! per call) — the paper picks proposal for small spaces (unary) and
//! sampling for rich spaces (binary/high-order/extractor).

use smartfeat::selector::OperatorSelector;
use smartfeat::SmartFeatConfig;
use smartfeat_bench::{criterion_group, criterion_main, Criterion};
use smartfeat_fm::SimulatedFm;
use smartfeat_obs::Recorder;

fn bench_strategies(c: &mut Criterion) {
    let ds = smartfeat_datasets::by_name("Tennis", 300, 3).expect("tennis exists");
    let agenda = ds.agenda("RF");
    let config = SmartFeatConfig::default();

    c.bench_function("proposal/unary_all_attributes", |b| {
        b.iter(|| {
            let fm = SimulatedFm::gpt4(1);
            let selector = OperatorSelector::new(&fm, &config, Recorder::disabled());
            let mut total = 0usize;
            for f in &agenda.features {
                total += selector
                    .propose_unary(&agenda, &f.name)
                    .expect("fm ok")
                    .len();
            }
            total
        })
    });

    c.bench_function("sampling/binary_budget_10", |b| {
        b.iter(|| {
            let fm = SimulatedFm::gpt4(1);
            let selector = OperatorSelector::new(&fm, &config, Recorder::disabled());
            let mut accepted = 0usize;
            for _ in 0..10 {
                if let smartfeat::selector::Sample::Candidate(_) =
                    selector.sample_binary(&agenda).expect("fm ok")
                {
                    accepted += 1;
                }
            }
            accepted
        })
    });

    c.bench_function("sampling/highorder_budget_10", |b| {
        let adult = smartfeat_datasets::by_name("Adult", 300, 3).expect("adult exists");
        let adult_agenda = adult.agenda("RF");
        b.iter(|| {
            let fm = SimulatedFm::gpt4(1);
            let selector = OperatorSelector::new(&fm, &config, Recorder::disabled());
            let mut accepted = 0usize;
            for _ in 0..10 {
                if let smartfeat::selector::Sample::Candidate(_) =
                    selector.sample_highorder(&adult_agenda).expect("fm ok")
                {
                    accepted += 1;
                }
            }
            accepted
        })
    });
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
