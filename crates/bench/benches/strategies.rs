//! Strategy benchmarks, two layers:
//!
//! 1. Design-choice ablation (§3.2): the *proposal* strategy (one call
//!    enumerating all candidates) vs the *sampling* strategy (one
//!    candidate per call) — the paper picks proposal for small spaces
//!    (unary) and sampling for rich spaces (binary/high-order/extractor).
//! 2. Search-strategy sweep: full pipeline runs per `--strategy` across
//!    the width/generation/turn knobs, the timing side of the
//!    strategy-vs-FM-cost-vs-AUC frontier in EXPERIMENTS.md. The blessed
//!    medians live in `BENCH_PR7.json` (regenerate with
//!    `SMARTFEAT_BENCH_JSON=$PWD/BENCH_PR7.json cargo bench -p
//!    smartfeat-bench --bench strategies`); CI's bench-smoke job checks
//!    the benchmark set still matches that file's line count.
//!
//! ci-baseline: BENCH_PR7.json

use smartfeat::selector::OperatorSelector;
use smartfeat::{SearchStrategyKind, SmartFeat, SmartFeatConfig};
use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartfeat_fm::SimulatedFm;
use smartfeat_obs::Recorder;

fn bench_strategies(c: &mut Criterion) {
    let ds = smartfeat_datasets::by_name("Tennis", 300, 3).expect("tennis exists");
    let agenda = ds.agenda("RF");
    let config = SmartFeatConfig::default();

    c.bench_function("proposal/unary_all_attributes", |b| {
        b.iter(|| {
            let fm = SimulatedFm::gpt4(1);
            let selector = OperatorSelector::new(&fm, &config, Recorder::disabled());
            let mut total = 0usize;
            for f in &agenda.features {
                total += selector
                    .propose_unary(&agenda, &f.name)
                    .expect("fm ok")
                    .len();
            }
            total
        })
    });

    c.bench_function("sampling/binary_budget_10", |b| {
        b.iter(|| {
            let fm = SimulatedFm::gpt4(1);
            let selector = OperatorSelector::new(&fm, &config, Recorder::disabled());
            let mut accepted = 0usize;
            for _ in 0..10 {
                if let smartfeat::selector::Sample::Candidate(_) =
                    selector.sample_binary(&agenda).expect("fm ok")
                {
                    accepted += 1;
                }
            }
            accepted
        })
    });

    c.bench_function("sampling/highorder_budget_10", |b| {
        let adult = smartfeat_datasets::by_name("Adult", 300, 3).expect("adult exists");
        let adult_agenda = adult.agenda("RF");
        b.iter(|| {
            let fm = SimulatedFm::gpt4(1);
            let selector = OperatorSelector::new(&fm, &config, Recorder::disabled());
            let mut accepted = 0usize;
            for _ in 0..10 {
                if let smartfeat::selector::Sample::Candidate(_) =
                    selector.sample_highorder(&adult_agenda).expect("fm ok")
                {
                    accepted += 1;
                }
            }
            accepted
        })
    });
}

/// One full pipeline run under `cfg`; returns the generated-feature
/// count so the work cannot be optimized away.
fn run_search(cfg: &SmartFeatConfig) -> usize {
    let ds = smartfeat_datasets::insurance::generate(60, 7);
    let selector = SimulatedFm::gpt4(21);
    let generator = SimulatedFm::gpt35(22);
    SmartFeat::new(&selector, &generator, cfg.clone())
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs")
        .generated
        .len()
}

/// Search-strategy sweep: end-to-end pipeline cost per strategy and knob
/// setting on the 60-row insurance dataset.
fn bench_search_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(10);

    group.bench_function("one_shot", |b| {
        let cfg = SmartFeatConfig::default();
        b.iter(|| run_search(&cfg))
    });

    for (width, depth) in [(2usize, 1usize), (3, 2)] {
        let mut cfg = SmartFeatConfig::default();
        cfg.search.strategy = SearchStrategyKind::Beam;
        cfg.search.beam_width = width;
        cfg.search.beam_depth = depth;
        group.bench_with_input(
            BenchmarkId::new("beam", format!("w{width}_d{depth}")),
            &cfg,
            |b, cfg| b.iter(|| run_search(cfg)),
        );
    }

    for (generations, population) in [(2usize, 4usize), (3, 6)] {
        let mut cfg = SmartFeatConfig::default();
        cfg.search.strategy = SearchStrategyKind::Evolutionary;
        cfg.search.generations = generations;
        cfg.search.population = population;
        group.bench_with_input(
            BenchmarkId::new("evolutionary", format!("g{generations}_p{population}")),
            &cfg,
            |b, cfg| b.iter(|| run_search(cfg)),
        );
    }

    for turns in [4usize, 8] {
        let mut cfg = SmartFeatConfig::default();
        cfg.search.strategy = SearchStrategyKind::React;
        cfg.search.react_turns = turns;
        group.bench_with_input(
            BenchmarkId::new("react", format!("t{turns}")),
            &cfg,
            |b, cfg| b.iter(|| run_search(cfg)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_strategies, bench_search_strategies);
criterion_main!(benches);
