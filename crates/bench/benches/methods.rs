//! §4.2 efficiency microbenchmark: feature-engineering wall-clock of every
//! method on a fixed small Tennis and Adult instance. The paper's ordering
//! to look for: SMARTFEAT and Featuretools fast, CAAFE slower (validation
//! refits), AutoFeat slowest (thousands of materialized candidates).

use std::time::Duration;

use smartfeat_bench::methods::{run_method, MethodName};
use smartfeat_bench::prep::prepare;
use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartfeat_ml::ModelKind;

fn bench_methods(c: &mut Criterion) {
    for dataset in ["Tennis", "Adult"] {
        let rows = if dataset == "Tennis" { 300 } else { 500 };
        let ds = smartfeat_datasets::by_name(dataset, rows, 3).expect("dataset exists");
        let prep = prepare(&ds);
        let mut group = c.benchmark_group(format!("engineer/{dataset}"));
        group.sample_size(10);
        for method in MethodName::all() {
            group.bench_with_input(
                BenchmarkId::from_parameter(method.name()),
                &method,
                |b, &m| {
                    b.iter(|| {
                        let out = run_method(
                            m,
                            &prep.frame,
                            &ds,
                            &prep.categorical,
                            ModelKind::LR,
                            Duration::from_secs(120),
                            9,
                        );
                        out.selected_count
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
