//! Design-choice ablation: SMARTFEAT's operator-guided search vs the
//! exhaustive enumeration of traditional AFE (Featuretools' primitives,
//! AutoFeat's non-linear expansion). The numbers to look for: SMARTFEAT
//! touches an order of magnitude fewer candidates for comparable quality.

use std::time::Duration;

use smartfeat::SmartFeatConfig;
use smartfeat_baselines::{AfeMethod, AutoFeat, Featuretools};
use smartfeat_bench::methods::run_smartfeat;
use smartfeat_bench::prep::prepare;
use smartfeat_bench::{criterion_group, criterion_main, Criterion};

fn bench_search_space(c: &mut Criterion) {
    let ds = smartfeat_datasets::by_name("Adult", 400, 3).expect("adult exists");
    let prep = prepare(&ds);
    let mut group = c.benchmark_group("search_space");
    group.sample_size(10);

    group.bench_function("operator_guided_smartfeat", |b| {
        b.iter(|| {
            run_smartfeat(&prep.frame, &ds, SmartFeatConfig::default(), false, 5).generated_count
        })
    });

    group.bench_function("exhaustive_featuretools", |b| {
        b.iter(|| {
            Featuretools::default()
                .run(
                    &prep.frame,
                    &prep.target,
                    &prep.categorical,
                    Duration::from_secs(120),
                )
                .generated_count
        })
    });

    group.bench_function("exhaustive_autofeat", |b| {
        b.iter(|| {
            AutoFeat::default()
                .run(
                    &prep.frame,
                    &prep.target,
                    &prep.categorical,
                    Duration::from_secs(120),
                )
                .generated_count
        })
    });

    group.finish();
}

criterion_group!(benches, bench_search_space);
criterion_main!(benches);
