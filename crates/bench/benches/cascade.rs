//! Cascade-routing benchmarks: end-to-end pipeline cost per FM
//! configuration — each single simulated backend serving both roles, the
//! paper's fixed GPT-4/GPT-3.5 pairing, and the cost-ordered cascade
//! ladder. The timing side of the cascade-vs-single-model frontier in
//! EXPERIMENTS.md (dollar cost and AUC come from
//! `examples/cascade_frontier.rs`). The blessed medians live in
//! `BENCH_PR8.json` (regenerate with
//! `SMARTFEAT_BENCH_JSON=$PWD/BENCH_PR8.json cargo bench -p
//! smartfeat-bench --bench cascade`); CI's bench-smoke job checks the
//! benchmark set still matches that file's line count.
//!
//! ci-baseline: BENCH_PR8.json

use smartfeat::{build_role_fms, BackendKind, CascadeConfig, SmartFeat, SmartFeatConfig};
use smartfeat_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// One full pipeline run with whatever FM pairing `cfg` asks for;
/// returns the generated-feature count so the work cannot be optimized
/// away.
fn run_search(cfg: &SmartFeatConfig) -> usize {
    let ds = smartfeat_datasets::insurance::generate(60, 7);
    let (selector, generator) = build_role_fms(cfg);
    SmartFeat::new(&selector, &generator, cfg.clone())
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs")
        .generated
        .len()
}

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("cascade");
    group.sample_size(10);

    group.bench_function("paper_pairing", |b| {
        let cfg = SmartFeatConfig {
            seed: 21,
            ..SmartFeatConfig::default()
        };
        b.iter(|| run_search(&cfg))
    });

    for kind in BackendKind::all() {
        let cfg = SmartFeatConfig {
            backend: Some(kind),
            seed: 21,
            ..SmartFeatConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("single", kind.name()), &cfg, |b, cfg| {
            b.iter(|| run_search(cfg))
        });
    }

    group.bench_function("ladder_default", |b| {
        let cfg = SmartFeatConfig {
            cascade: CascadeConfig {
                enabled: true,
                ..CascadeConfig::default()
            },
            seed: 21,
            ..SmartFeatConfig::default()
        };
        b.iter(|| run_search(&cfg))
    });

    group.finish();
}

criterion_group!(benches, bench_cascade);
criterion_main!(benches);
