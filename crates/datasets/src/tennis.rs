//! Tennis (match-statistics-style): 944 rows, 12 numeric columns, Sports.
//!
//! The Table 6/7 workhorse. Column names are the paper's abbreviations
//! (`FSP.1`, `FSW.1`, …) with full descriptions in the data card — the
//! names-only ablation strips the descriptions and loses the context.
//!
//! Signal: the match outcome follows the *difference of weighted
//! performance indices* between the two players (aces and serve stats up,
//! double faults and unforced errors down) — exactly the structure the
//! extractor's weighted index and the binary player-difference operators
//! recover. Raw per-player stats carry only the smoothed version.

use smartfeat_frame::{Column, DataFrame};
use smartfeat_rng::Rng;

use crate::common::{label_from_score, norm, rng_for, uniform, Dataset};

/// Per-player stat block generated for one match.
struct PlayerStats {
    fsp: f64,
    fsw: f64,
    ssp: f64,
    ace: f64,
    dbf: f64,
    ufe: f64,
}

/// Observed stats mix three components: the player's skill (the signal),
/// the *match pace* (a shared confounder — long, fast matches inflate every
/// count for both players), and per-stat noise. Cross-player differences
/// cancel the pace exactly; single raw stats are contaminated by it.
fn player(rng: &mut Rng, pace: f64) -> PlayerStats {
    let skill = norm(rng);
    PlayerStats {
        fsp: (58.0 + skill * 2.5 + pace * 8.0 + norm(rng) * 2.0).clamp(30.0, 90.0),
        fsw: (25.0 + skill * 3.0 + pace * 10.0 + norm(rng) * 2.0)
            .clamp(5.0, 80.0)
            .round(),
        ssp: (48.0 + skill * 2.0 + pace * 8.0 + norm(rng) * 2.5).clamp(20.0, 80.0),
        ace: (10.0 + skill * 2.0 + pace * 6.0 + norm(rng).abs() * 1.5)
            .clamp(1.0, 45.0)
            .round(),
        dbf: (8.0 - skill * 1.0 + pace * 4.0 + norm(rng).abs() * 1.0)
            .clamp(1.0, 30.0)
            .round(),
        ufe: (30.0 - skill * 3.5 + pace * 12.0 + norm(rng).abs() * 2.5)
            .clamp(2.0, 90.0)
            .round(),
    }
}

/// Weighted performance index over the *observed* stats — what the
/// extractor's weighted-index feature reconstructs (up to its ±1 weights).
fn index(p: &PlayerStats) -> f64 {
    0.5 * (p.fsp - 58.0) / 2.5
        + 0.8 * (p.fsw - 25.0) / 3.0
        + 0.3 * (p.ssp - 48.0) / 2.0
        + 1.0 * (p.ace - 10.0) / 2.0
        - 1.0 * (p.dbf - 8.0) / 1.0
        - 1.0 * (p.ufe - 30.0) / 3.5
}

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Tennis", seed);
    let mut cols: Vec<Vec<f64>> = (0..12).map(|_| Vec::with_capacity(rows)).collect();
    let mut label = Vec::with_capacity(rows);

    for _ in 0..rows {
        // Match pace: a shared confounder inflating both players' counts.
        let pace = norm(&mut rng);
        let p1 = player(&mut rng, pace);
        let p2 = player(&mut rng, pace);
        // The winner is decided by the index *difference*, in which the
        // pace cancels; every individual stat still carries the pace.
        let mut score = 0.25 * (index(&p1) - index(&p2));
        score += 0.55 * norm(&mut rng);
        let _ = uniform(&mut rng, 0.0, 1.0); // decorrelate label draw stream
        label.push(label_from_score(&mut rng, score));

        for (i, v) in [
            p1.fsp, p1.fsw, p1.ssp, p1.ace, p1.dbf, p1.ufe, p2.fsp, p2.fsw, p2.ssp, p2.ace, p2.dbf,
            p2.ufe,
        ]
        .into_iter()
        .enumerate()
        {
            cols[i].push((v * 10.0).round() / 10.0);
        }
    }

    let names = [
        "FSP.1", "FSW.1", "SSP.1", "ACE.1", "DBF.1", "UFE.1", "FSP.2", "FSW.2", "SSP.2", "ACE.2",
        "DBF.2", "UFE.2",
    ];
    let mut columns: Vec<Column> = names
        .iter()
        .zip(cols)
        .map(|(n, v)| Column::from_f64(*n, v))
        .collect();
    columns.push(Column::from_i64("Result", label));
    let frame = DataFrame::from_columns(columns).expect("valid frame");

    let describe = |stat: &str, player: u8| -> String {
        let what = match stat {
            "FSP" => "First serve percentage",
            "FSW" => "First serve points won",
            "SSP" => "Second serve percentage",
            "ACE" => "Aces won",
            "DBF" => "Double faults committed",
            "UFE" => "Unforced errors committed",
            _ => unreachable!(),
        };
        format!("{what} by player {player}")
    };
    let descriptions = names
        .iter()
        .map(|n| {
            let (stat, p) = n.split_once('.').expect("suffixed name");
            (n.to_string(), describe(stat, p.parse().unwrap()))
        })
        .collect();

    Dataset {
        name: "Tennis",
        field: "Sports",
        frame,
        descriptions,
        target: "Result",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(944, 0);
        assert_eq!(ds.frame.n_rows(), 944);
        assert_eq!(ds.shape_counts(), (0, 12));
    }

    #[test]
    fn abbreviated_names_with_full_descriptions() {
        let ds = generate(200, 1);
        assert!(ds.frame.has_column("FSW.1"));
        let (_, d) = ds.descriptions.iter().find(|(n, _)| n == "FSW.1").unwrap();
        assert!(d.contains("First serve"), "{d}");
    }

    #[test]
    fn index_difference_beats_raw_stats() {
        let ds = generate(944, 2);
        let y = ds.frame.to_labels("Result").unwrap();
        let get = |n: &str| ds.frame.column(n).unwrap().to_f64();
        let (a1, a2) = (get("ACE.1"), get("ACE.2"));
        let (d1, d2) = (get("DBF.1"), get("DBF.2"));
        let (u1, u2) = (get("UFE.1"), get("UFE.2"));
        let diff_index: Vec<Option<f64>> = (0..y.len())
            .map(|i| {
                Some(
                    (a1[i].unwrap() - d1[i].unwrap() - u1[i].unwrap())
                        - (a2[i].unwrap() - d2[i].unwrap() - u2[i].unwrap()),
                )
            })
            .collect();
        let mi_index = smartfeat_frame::stats::mutual_information(&diff_index, &y, 10);
        let mi_raw = smartfeat_frame::stats::mutual_information(&a1, &y, 10);
        assert!(
            mi_index > mi_raw * 2.0,
            "index MI {mi_index} vs raw ace MI {mi_raw}"
        );
    }

    #[test]
    fn mirrored_stats_have_same_marginals() {
        let ds = generate(944, 3);
        let s1 =
            smartfeat_frame::stats::summarize(&ds.frame.column("FSP.1").unwrap().to_f64()).unwrap();
        let s2 =
            smartfeat_frame::stats::summarize(&ds.frame.column("FSP.2").unwrap().to_f64()).unwrap();
        assert!((s1.mean - s2.mean).abs() < 2.0);
    }
}
