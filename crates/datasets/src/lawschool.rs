//! Lawschool (bar-passage-style): 4 591 rows, 5 categorical + 7 numeric,
//! Education.
//!
//! The paper's second "well-constructed" dataset: bar passage is nearly
//! linear in LSAT score and undergraduate GPA, which are already clean,
//! standardized inputs. Feature engineering has nothing to add — every
//! method's AUC change is within noise of zero (some slightly negative).

use smartfeat_frame::{Column, DataFrame};

use crate::common::{label_from_score, norm, pick, pick_weighted, rng_for, uniform, Dataset};

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Lawschool", seed);
    let races = [
        ("white", 7.0),
        ("black", 1.2),
        ("hispanic", 1.0),
        ("asian", 0.8),
    ];
    let income_bands = ["low", "middle", "high"];
    let clusters = ["tier1", "tier2", "tier3", "tier4"];

    let mut race = Vec::with_capacity(rows);
    let mut sex = Vec::with_capacity(rows);
    let mut fulltime = Vec::with_capacity(rows);
    let mut fam_income = Vec::with_capacity(rows);
    let mut cluster = Vec::with_capacity(rows);
    let mut lsat = Vec::with_capacity(rows);
    let mut ugpa = Vec::with_capacity(rows);
    let mut zfygpa = Vec::with_capacity(rows);
    let mut zgpa = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut work_exp = Vec::with_capacity(rows);
    let mut decile = Vec::with_capacity(rows);
    let mut label = Vec::with_capacity(rows);

    for _ in 0..rows {
        let r = *pick_weighted(&mut rng, &races);
        let s = if uniform(&mut rng, 0.0, 1.0) < 0.55 {
            "male"
        } else {
            "female"
        };
        let ft = if uniform(&mut rng, 0.0, 1.0) < 0.9 {
            "yes"
        } else {
            "no"
        };
        let inc = *pick(&mut rng, &income_bands);
        let cl = *pick(&mut rng, &clusters);

        let ability = norm(&mut rng);
        let l = (37.0 + ability * 5.0 + norm(&mut rng) * 2.0).clamp(11.0, 48.0);
        let g = (3.2 + ability * 0.35 + norm(&mut rng) * 0.2).clamp(1.5, 4.0);
        let zf = ability * 0.8 + norm(&mut rng) * 0.5;
        let z = ability * 0.85 + norm(&mut rng) * 0.45;
        let a = (22.0 + uniform(&mut rng, 0.0, 1.0).powi(2) * 18.0).round();
        let w = (uniform(&mut rng, 0.0, 1.0).powi(2) * 8.0).round();
        let d = (1.0 + ((ability + 2.5) / 5.0 * 9.0).clamp(0.0, 9.0)).round();

        // Clean linear score: LSAT and GPA dominate; nothing derivable adds.
        let mut score = 1.0;
        score += 1.4 * (l - 37.0) / 5.0;
        score += 0.9 * (g - 3.2) / 0.35;
        score += 0.25 * z;
        score += 0.1 * f64::from(ft == "yes");
        score += 0.45 * norm(&mut rng);
        label.push(label_from_score(&mut rng, 0.55 * score));

        race.push(r);
        sex.push(s);
        fulltime.push(ft);
        fam_income.push(inc);
        cluster.push(cl);
        lsat.push((l * 10.0).round() / 10.0);
        ugpa.push((g * 100.0).round() / 100.0);
        zfygpa.push((zf * 100.0).round() / 100.0);
        zgpa.push((z * 100.0).round() / 100.0);
        age.push(a as i64);
        work_exp.push(w);
        decile.push(d);
    }

    let frame = DataFrame::from_columns(vec![
        Column::from_str_slice("race", &race),
        Column::from_str_slice("sex", &sex),
        Column::from_str_slice("fulltime", &fulltime),
        Column::from_str_slice("family_income", &fam_income),
        Column::from_str_slice("school_cluster", &cluster),
        Column::from_f64("lsat", lsat),
        Column::from_f64("ugpa", ugpa),
        Column::from_f64("zfygpa", zfygpa),
        Column::from_f64("zgpa", zgpa),
        Column::from_i64("age", age),
        Column::from_f64("work_experience", work_exp),
        Column::from_f64("decile", decile),
        Column::from_i64("pass_bar", label),
    ])
    .expect("valid frame");

    Dataset {
        name: "Lawschool",
        field: "Education",
        frame,
        descriptions: vec![
            ("race".into(), "Race of the student".into()),
            ("sex".into(), "Sex of the student".into()),
            (
                "fulltime".into(),
                "Whether the student attended full time".into(),
            ),
            (
                "family_income".into(),
                "Family income band of the student".into(),
            ),
            ("school_cluster".into(), "Law school tier cluster".into()),
            ("lsat".into(), "LSAT score of the student".into()),
            ("ugpa".into(), "Undergraduate GPA of the student".into()),
            (
                "zfygpa".into(),
                "Standardized first-year law school GPA".into(),
            ),
            (
                "zgpa".into(),
                "Standardized cumulative law school GPA".into(),
            ),
            ("age".into(), "Age of the student in years".into()),
            (
                "work_experience".into(),
                "Years of work experience before law school".into(),
            ),
            (
                "decile".into(),
                "Class rank decile within the school".into(),
            ),
        ],
        target: "pass_bar",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(400, 0);
        assert_eq!(ds.shape_counts(), (5, 7));
    }

    #[test]
    fn lsat_is_strongly_linear_in_the_label() {
        let ds = generate(4000, 1);
        let y = ds.frame.to_labels("pass_bar").unwrap();
        let l = ds.frame.column("lsat").unwrap().to_f64();
        let yf: Vec<Option<f64>> = y.iter().map(|&v| Some(f64::from(v))).collect();
        let corr = smartfeat_frame::stats::pearson(&l, &yf).unwrap();
        assert!(corr > 0.3, "lsat-label correlation {corr}");
    }

    #[test]
    fn correlated_academic_measures() {
        let ds = generate(2000, 2);
        let l = ds.frame.column("lsat").unwrap().to_f64();
        let g = ds.frame.column("ugpa").unwrap().to_f64();
        let corr = smartfeat_frame::stats::pearson(&l, &g).unwrap();
        assert!(corr > 0.3, "lsat-gpa correlation {corr}");
    }
}
