//! Housing (California-housing-style): 20 641 rows, 1 categorical +
//! 8 numeric, Society.
//!
//! The label (house value above the median) depends on the classic derived
//! ratios of this dataset — rooms per household, bedrooms per room,
//! population per household — plus the log of median income and an
//! ocean-proximity effect. Binary division operators recover the ratios.

use smartfeat_frame::{Column, DataFrame};

use crate::common::{
    category_effect, label_from_score, norm, pick_weighted, rng_for, uniform, Dataset,
};

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Housing", seed);
    let proximities = [
        ("inland", 6.0),
        ("near_bay", 2.0),
        ("near_ocean", 2.5),
        ("island", 0.1),
    ];

    let mut longitude = Vec::with_capacity(rows);
    let mut latitude = Vec::with_capacity(rows);
    let mut house_age = Vec::with_capacity(rows);
    let mut total_rooms = Vec::with_capacity(rows);
    let mut total_bedrooms = Vec::with_capacity(rows);
    let mut population = Vec::with_capacity(rows);
    let mut households = Vec::with_capacity(rows);
    let mut income = Vec::with_capacity(rows);
    let mut proximity = Vec::with_capacity(rows);
    let mut label = Vec::with_capacity(rows);

    for _ in 0..rows {
        let prox = *pick_weighted(&mut rng, &proximities);
        let lon = uniform(&mut rng, -124.3, -114.3);
        let lat = uniform(&mut rng, 32.5, 42.0);
        let age = (1.0 + uniform(&mut rng, 0.0, 1.0) * 51.0).round();
        let hh = (100.0 + uniform(&mut rng, 0.0, 1.0).powi(2) * 1800.0).round();
        let rooms_per_hh = 3.0 + norm(&mut rng).abs() * 2.5;
        let rooms = (hh * rooms_per_hh).round();
        let bed_ratio = (0.15 + norm(&mut rng).abs() * 0.08).min(0.55);
        let bedrooms = (rooms * bed_ratio).round().max(1.0);
        let occupancy = 2.2 + norm(&mut rng).abs() * 1.4;
        let pop = (hh * occupancy).round();
        let inc = (1.2 + uniform(&mut rng, 0.0, 1.0).powi(2) * 11.0 * uniform(&mut rng, 0.3, 1.0))
            .clamp(0.5, 15.0);

        let mut score = -0.5;
        score += 1.2 * ((inc.ln() - 1.1) / 0.6); // log income, derived
        score += 1.3 * ((rooms_per_hh - 4.3) / 1.8); // rooms per household
        score -= 1.4 * ((bed_ratio - 0.2) / 0.07); // bedrooms per room
        score -= 0.9 * ((occupancy - 3.0) / 1.2); // population per household
        score += 1.2 * category_effect(prox);
        score -= 0.15 * ((age - 26.0) / 15.0);
        score += 0.4 * norm(&mut rng);
        label.push(label_from_score(&mut rng, score));

        longitude.push((lon * 100.0).round() / 100.0);
        latitude.push((lat * 100.0).round() / 100.0);
        house_age.push(age);
        total_rooms.push(rooms);
        total_bedrooms.push(bedrooms);
        population.push(pop);
        households.push(hh);
        income.push((inc * 10000.0).round() / 10000.0);
        proximity.push(prox);
    }

    let frame = DataFrame::from_columns(vec![
        Column::from_str_slice("ocean_proximity", &proximity),
        Column::from_f64("longitude", longitude),
        Column::from_f64("latitude", latitude),
        Column::from_f64("housing_median_age", house_age),
        Column::from_f64("total_rooms", total_rooms),
        Column::from_f64("total_bedrooms", total_bedrooms),
        Column::from_f64("population", population),
        Column::from_f64("households", households),
        Column::from_f64("median_income", income),
        Column::from_i64("above_median_value", label),
    ])
    .expect("valid frame");

    Dataset {
        name: "Housing",
        field: "Society",
        frame,
        descriptions: vec![
            (
                "ocean_proximity".into(),
                "Location of the block relative to the ocean".into(),
            ),
            ("longitude".into(), "Longitude of the housing block".into()),
            ("latitude".into(), "Latitude of the housing block".into()),
            (
                "housing_median_age".into(),
                "Median age of houses in the block in years".into(),
            ),
            (
                "total_rooms".into(),
                "Total number of rooms in the block".into(),
            ),
            (
                "total_bedrooms".into(),
                "Total number of bedrooms in the block".into(),
            ),
            ("population".into(), "Total population of the block".into()),
            (
                "households".into(),
                "Number of households in the block".into(),
            ),
            (
                "median_income".into(),
                "Median household income of the block (tens of thousands of dollars)".into(),
            ),
        ],
        target: "above_median_value",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(500, 0);
        assert_eq!(ds.shape_counts(), (1, 8));
    }

    #[test]
    fn bedrooms_do_not_exceed_rooms() {
        let ds = generate(800, 1);
        let rooms = ds.frame.column("total_rooms").unwrap().to_f64();
        let beds = ds.frame.column("total_bedrooms").unwrap().to_f64();
        for (r, b) in rooms.iter().zip(&beds) {
            assert!(b.unwrap() <= r.unwrap());
        }
    }

    #[test]
    fn derived_ratio_beats_raw_columns() {
        // rooms/households carries more MI with the label than raw rooms —
        // the planted structure binary division recovers.
        let ds = generate(8000, 2);
        let y = ds.frame.to_labels("above_median_value").unwrap();
        let rooms = ds.frame.column("total_rooms").unwrap().to_f64();
        let hh = ds.frame.column("households").unwrap().to_f64();
        let ratio: Vec<Option<f64>> = rooms
            .iter()
            .zip(&hh)
            .map(|(r, h)| Some(r.unwrap() / h.unwrap()))
            .collect();
        let mi_ratio = smartfeat_frame::stats::mutual_information(&ratio, &y, 10);
        let mi_rooms = smartfeat_frame::stats::mutual_information(&rooms, &y, 10);
        assert!(
            mi_ratio > mi_rooms * 1.5,
            "ratio MI {mi_ratio} vs raw {mi_rooms}"
        );
    }
}
