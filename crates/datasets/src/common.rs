//! Shared dataset plumbing: the [`Dataset`] bundle and seeded samplers.

use smartfeat::DataAgenda;
use smartfeat_frame::{DType, DataFrame};
use smartfeat_rng::Rng;

/// One synthetic evaluation dataset with its data card.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Paper name (`"Diabetes"`, …).
    pub name: &'static str,
    /// Application field per Table 3.
    pub field: &'static str,
    /// The data (features + target column).
    pub frame: DataFrame,
    /// `(column, description)` pairs — the data card.
    pub descriptions: Vec<(String, String)>,
    /// Prediction-class column.
    pub target: &'static str,
}

impl Dataset {
    /// `(categorical, numeric)` feature counts excluding the target,
    /// where "categorical" means string-typed (pre-factorization).
    pub fn shape_counts(&self) -> (usize, usize) {
        let mut cat = 0;
        let mut num = 0;
        for c in self.frame.columns() {
            if c.name() == self.target {
                continue;
            }
            if c.dtype() == DType::Str {
                cat += 1;
            } else {
                num += 1;
            }
        }
        (cat, num)
    }

    /// Build the data agenda for a downstream model.
    pub fn agenda(&self, model: &str) -> DataAgenda {
        let pairs: Vec<(&str, &str)> = self
            .descriptions
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_str()))
            .collect();
        DataAgenda::from_frame(&self.frame, &pairs, self.target, model)
    }

    /// Names-only agenda (the feature-description ablation).
    pub fn agenda_names_only(&self, model: &str) -> DataAgenda {
        self.agenda(model).without_descriptions()
    }
}

/// Seeded RNG shared by the generators; dataset name is folded into the
/// seed so different datasets at the same seed differ.
pub fn rng_for(name: &str, seed: u64) -> Rng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    Rng::seed_from_u64(seed ^ h)
}

/// Standard normal via Box–Muller.
pub fn norm(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_f64().max(1e-12);
    let u2: f64 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniform in `[lo, hi)`.
pub fn uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    rng.gen_f64() * (hi - lo) + lo
}

/// Pick one item uniformly.
pub fn pick<'a, T>(rng: &mut Rng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Pick one item by (unnormalized) weights.
pub fn pick_weighted<'a, T>(rng: &mut Rng, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| *w).sum();
    let mut draw = rng.gen_f64() * total;
    for (item, w) in items {
        draw -= w;
        if draw <= 0.0 {
            return item;
        }
    }
    &items[items.len() - 1].0
}

/// A deterministic per-category effect in `[-1, 1]`, derived by hashing the
/// category value. Group-by-mean features recover these exactly; factorized
/// integer codes see them as noise — the mechanism that makes high-order
/// operators pay off.
pub fn category_effect(value: &str) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in value.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % 2001) as f64 / 1000.0 - 1.0
}

/// Bernoulli draw from a logistic score: `P(y=1) = sigmoid(score)`.
pub fn label_from_score(rng: &mut Rng, score: f64) -> i64 {
    let p = 1.0 / (1.0 + (-score).exp());
    i64::from(rng.gen_f64() < p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_differs_by_name_and_seed() {
        let a = rng_for("Adult", 1).next_u64();
        let b = rng_for("Bank", 1).next_u64();
        let c = rng_for("Adult", 2).next_u64();
        let a2 = rng_for("Adult", 1).next_u64();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn norm_has_reasonable_moments() {
        let mut rng = rng_for("test", 0);
        let xs: Vec<f64> = (0..20_000).map(|_| norm(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn category_effect_is_stable_and_bounded() {
        assert_eq!(category_effect("Civic"), category_effect("Civic"));
        assert_ne!(category_effect("Civic"), category_effect("Corolla"));
        for v in ["a", "b", "teacher", "SF", "blue-collar"] {
            let e = category_effect(v);
            assert!((-1.0..=1.0).contains(&e));
        }
    }

    #[test]
    fn label_from_score_tracks_probability() {
        let mut rng = rng_for("labels", 0);
        let hi: i64 = (0..2000).map(|_| label_from_score(&mut rng, 3.0)).sum();
        let lo: i64 = (0..2000).map(|_| label_from_score(&mut rng, -3.0)).sum();
        assert!(hi > 1800, "{hi}");
        assert!(lo < 200, "{lo}");
    }

    #[test]
    fn pick_weighted_prefers_heavy_items() {
        let mut rng = rng_for("pick", 0);
        let items = [("rare", 1.0), ("common", 20.0)];
        let common = (0..500)
            .filter(|_| *pick_weighted(&mut rng, &items) == "common")
            .count();
        assert!(common > 400);
    }
}
