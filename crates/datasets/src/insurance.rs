//! The paper's motivating example (Table 1): an insurance dataset whose
//! label ("Safe") depends on the four features the paper walks through —
//! F1 bucketized age, F2 manufacturing year, F3 per-model claim
//! probability, F4 city population density.
//!
//! Unlike the eight evaluation datasets this one keeps its string columns
//! (city names in particular), so the external-knowledge lookup path (F4)
//! runs end-to-end in the quickstart example and Figure 1 driver.

use smartfeat_frame::{Column, DataFrame};

use crate::common::{category_effect, label_from_score, norm, pick, rng_for, uniform, Dataset};

/// Cities with densities the simulated FM has memorized.
const CITIES: [&str; 6] = ["SF", "LA", "SEA", "NYC", "CHI", "HOU"];

/// Car models (the paper's Table 1 plus a few).
const MODELS: [&str; 8] = [
    "Honda, Civic",
    "Toyota, Corolla",
    "Ford, Mustang",
    "Chevrolet, Cruze",
    "BMW, X5",
    "Volkswagen, Golf",
    "Subaru, Outback",
    "Tesla, Model 3",
];

/// Known densities (people/km²) the label actually uses — the FM's
/// memorized values, so the F4 lookup genuinely recovers signal.
fn density(city: &str) -> f64 {
    smartfeat_fm_density(city)
}

fn smartfeat_fm_density(city: &str) -> f64 {
    // Mirror of the FM knowledge table's figures, kept local so the
    // datasets crate does not depend on the fm crate.
    match city {
        "SF" => 7272.0,
        "LA" => 3276.0,
        "SEA" => 3608.0,
        "NYC" => 11313.0,
        "CHI" => 4594.0,
        "HOU" => 1395.0,
        _ => 3000.0,
    }
}

/// Generate the insurance dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Insurance", seed);
    let mut sex = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut car_age = Vec::with_capacity(rows);
    let mut model = Vec::with_capacity(rows);
    let mut claim = Vec::with_capacity(rows);
    let mut city = Vec::with_capacity(rows);
    let mut safe = Vec::with_capacity(rows);

    for _ in 0..rows {
        let s = if uniform(&mut rng, 0.0, 1.0) < 0.5 {
            "M"
        } else {
            "F"
        };
        let a = (18.0 + uniform(&mut rng, 0.0, 1.0).powf(1.2) * 55.0).round();
        let ca = (1.0 + uniform(&mut rng, 0.0, 1.0) * 15.0).round();
        let m = *pick(&mut rng, &MODELS);
        let c = *pick(&mut rng, &CITIES);
        let m_eff = category_effect(m);
        let cl = i64::from(uniform(&mut rng, 0.0, 1.0) < 0.25 + 0.3 * m_eff);

        // "Safe" depends on exactly the paper's derived features.
        let mut score = 1.4;
        score -= 2.0 * f64::from(a < 21.0); // F1: the under-21 band
        score -= 0.9 * f64::from((21.0..25.0).contains(&a));
        score += 0.7 * f64::from((35.0..65.0).contains(&a));
        score -= 0.8 * ((2024.0 - ca) < 2014.0) as i64 as f64; // F2: old cars
        score -= 1.8 * m_eff; // F3: risky models (recovered by the
                              // per-model claim rate, F3)
        score -= 1.4 * (density(c) / 11313.0); // F4: denser cities riskier
        score -= 0.7 * f64::from(cl == 1);
        score += 0.4 * norm(&mut rng);
        safe.push(label_from_score(&mut rng, 1.3 * score));

        sex.push(s);
        age.push(a as i64);
        car_age.push(ca as i64);
        model.push(m);
        claim.push(cl);
        city.push(c);
    }

    let frame = DataFrame::from_columns(vec![
        Column::from_str_slice("Sex", &sex),
        Column::from_i64("Age", age),
        Column::from_i64("Age_of_car", car_age),
        Column::from_str_slice("Make_Model", &model),
        Column::from_i64("Claim", claim),
        Column::from_str_slice("City", &city),
        Column::from_i64("Safe", safe),
    ])
    .expect("valid frame");

    Dataset {
        name: "Insurance",
        field: "Insurance",
        frame,
        descriptions: vec![
            ("Sex".into(), "Sex of the policyholder (M/F)".into()),
            ("Age".into(), "Age of the policyholder in years".into()),
            (
                "Age_of_car".into(),
                "Age of the insured car in years".into(),
            ),
            (
                "Make_Model".into(),
                "Make and model of the insured car".into(),
            ),
            (
                "Claim".into(),
                "Whether the policyholder filed a claim in the last 6 months".into(),
            ),
            ("City".into(), "City where the policyholder lives".into()),
        ],
        target: "Safe",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_schema() {
        let ds = generate(100, 0);
        assert_eq!(
            ds.frame.column_names(),
            vec![
                "Sex",
                "Age",
                "Age_of_car",
                "Make_Model",
                "Claim",
                "City",
                "Safe"
            ]
        );
        assert_eq!(ds.shape_counts(), (3, 3));
    }

    #[test]
    fn young_drivers_are_riskier() {
        let ds = generate(4000, 1);
        let y = ds.frame.to_labels("Safe").unwrap();
        let age = ds.frame.column("Age").unwrap().to_f64();
        let rate = |lo: f64, hi: f64| {
            let mut safe_count = 0;
            let mut n = 0;
            for (a, &l) in age.iter().zip(&y) {
                let a = a.unwrap();
                if a >= lo && a < hi {
                    safe_count += usize::from(l == 1);
                    n += 1;
                }
            }
            safe_count as f64 / n.max(1) as f64
        };
        assert!(rate(35.0, 65.0) > rate(18.0, 21.0) + 0.15);
    }

    #[test]
    fn cities_are_fm_known() {
        let ds = generate(500, 2);
        for key in ds.frame.column("City").unwrap().value_counts().keys() {
            assert!(CITIES.contains(&key.as_str()));
        }
    }
}
