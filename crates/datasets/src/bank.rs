//! Bank (bank-marketing-style): 41 189 rows, 8 categorical + 10 numeric,
//! Finance.
//!
//! This is one of the paper's two "well-constructed" datasets: the label is
//! almost linear in the raw features (call duration, the euribor rate,
//! employment figures), so feature engineering barely moves the AUC — and
//! the initial AUC is already above 90.

use smartfeat_frame::{Column, DataFrame};

use crate::common::{label_from_score, norm, pick, pick_weighted, rng_for, uniform, Dataset};

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Bank", seed);
    let jobs = [
        "admin",
        "blue-collar",
        "technician",
        "services",
        "management",
        "retired",
        "entrepreneur",
        "self-employed",
        "housemaid",
        "unemployed",
        "student",
    ];
    let maritals = [("married", 6.0), ("single", 3.0), ("divorced", 1.0)];
    let educations = ["basic", "highschool", "professional", "university"];
    let contacts = [("cellular", 6.0), ("telephone", 4.0)];
    let poutcomes = [("nonexistent", 8.0), ("failure", 1.5), ("success", 0.5)];

    let mut cols: Vec<Vec<String>> = (0..8).map(|_| Vec::with_capacity(rows)).collect();
    let mut age = Vec::with_capacity(rows);
    let mut duration = Vec::with_capacity(rows);
    let mut campaign = Vec::with_capacity(rows);
    let mut pdays = Vec::with_capacity(rows);
    let mut previous = Vec::with_capacity(rows);
    let mut emp_var = Vec::with_capacity(rows);
    let mut cpi = Vec::with_capacity(rows);
    let mut cci = Vec::with_capacity(rows);
    let mut euribor = Vec::with_capacity(rows);
    let mut employed = Vec::with_capacity(rows);
    let mut label = Vec::with_capacity(rows);

    for _ in 0..rows {
        let job = *pick(&mut rng, &jobs);
        let marital = *pick_weighted(&mut rng, &maritals);
        let edu = *pick(&mut rng, &educations);
        let default = if uniform(&mut rng, 0.0, 1.0) < 0.02 {
            "yes"
        } else {
            "no"
        };
        let housing = if uniform(&mut rng, 0.0, 1.0) < 0.52 {
            "yes"
        } else {
            "no"
        };
        let loan = if uniform(&mut rng, 0.0, 1.0) < 0.16 {
            "yes"
        } else {
            "no"
        };
        let contact = *pick_weighted(&mut rng, &contacts);
        let pout = *pick_weighted(&mut rng, &poutcomes);

        let a = (18.0 + uniform(&mut rng, 0.0, 1.0) * 70.0).round();
        let dur = (uniform(&mut rng, 0.0, 1.0).powi(2) * 1500.0).round();
        let cam = 1.0 + (uniform(&mut rng, 0.0, 1.0).powi(3) * 10.0).round();
        let pd = if pout == "nonexistent" {
            999.0
        } else {
            (uniform(&mut rng, 1.0, 25.0)).round()
        };
        let prev = if pout == "nonexistent" {
            0.0
        } else {
            (uniform(&mut rng, 1.0, 5.0)).round()
        };
        // Macro indicators move together by "quarter".
        let regime = norm(&mut rng);
        let ev = (regime * 1.6).clamp(-3.4, 1.4);
        let eur = (3.6 + regime * 1.6).clamp(0.6, 5.1);
        let cp = 93.5 + regime * 0.6;
        let cc = -40.0 + regime * 5.0;
        let emp = 5160.0 + regime * 70.0;

        // Near-linear raw-feature score: well-constructed dataset.
        let mut score = -2.8;
        score += 2.6 * (dur / 700.0).min(2.2); // long calls convert
        score -= 0.9 * (eur - 3.6) / 1.6; // low rates convert
        score -= 0.5 * (emp - 5160.0) / 70.0;
        score += 1.6 * f64::from(pout == "success");
        score += 0.3 * f64::from(contact == "cellular");
        score -= 0.12 * (cam - 1.0);
        score += 0.35 * norm(&mut rng);
        label.push(label_from_score(&mut rng, 1.8 * score));

        for (v, target) in [
            (job, 0usize),
            (marital, 1),
            (edu, 2),
            (default, 3),
            (housing, 4),
            (loan, 5),
            (contact, 6),
            (pout, 7),
        ] {
            cols[target].push(v.to_string());
        }
        age.push(a as i64);
        duration.push(dur);
        campaign.push(cam);
        pdays.push(pd);
        previous.push(prev);
        emp_var.push((ev * 10.0).round() / 10.0);
        cpi.push((cp * 1000.0).round() / 1000.0);
        cci.push((cc * 10.0).round() / 10.0);
        euribor.push((eur * 1000.0).round() / 1000.0);
        employed.push(emp.round());
    }

    let names = [
        "job",
        "marital",
        "education",
        "default",
        "housing",
        "loan",
        "contact",
        "poutcome",
    ];
    let mut columns = Vec::new();
    for (name, values) in names.iter().zip(cols) {
        columns.push(Column::from_strs(
            *name,
            values.into_iter().map(Some).collect(),
        ));
    }
    columns.extend([
        Column::from_i64("age", age),
        Column::from_f64("duration", duration),
        Column::from_f64("campaign", campaign),
        Column::from_f64("pdays", pdays),
        Column::from_f64("previous", previous),
        Column::from_f64("emp_var_rate", emp_var),
        Column::from_f64("cons_price_idx", cpi),
        Column::from_f64("cons_conf_idx", cci),
        Column::from_f64("euribor3m", euribor),
        Column::from_f64("nr_employed", employed),
        Column::from_i64("subscribed", label),
    ]);
    let frame = DataFrame::from_columns(columns).expect("valid frame");

    Dataset {
        name: "Bank",
        field: "Finance",
        frame,
        descriptions: vec![
            ("job".into(), "Type of job of the client".into()),
            ("marital".into(), "Marital status of the client".into()),
            ("education".into(), "Education level of the client".into()),
            (
                "default".into(),
                "Whether the client has credit in default".into(),
            ),
            (
                "housing".into(),
                "Whether the client has a housing loan".into(),
            ),
            (
                "loan".into(),
                "Whether the client has a personal loan".into(),
            ),
            (
                "contact".into(),
                "Contact communication type used in the campaign".into(),
            ),
            (
                "poutcome".into(),
                "Outcome of the previous marketing campaign".into(),
            ),
            ("age".into(), "Age of the client in years".into()),
            (
                "duration".into(),
                "Duration of the last contact call in seconds".into(),
            ),
            (
                "campaign".into(),
                "Number of contacts performed during this campaign".into(),
            ),
            (
                "pdays".into(),
                "Days since the client was last contacted (999 = never)".into(),
            ),
            (
                "previous".into(),
                "Number of contacts before this campaign".into(),
            ),
            (
                "emp_var_rate".into(),
                "Employment variation rate (quarterly indicator)".into(),
            ),
            (
                "cons_price_idx".into(),
                "Consumer price index (monthly indicator)".into(),
            ),
            (
                "cons_conf_idx".into(),
                "Consumer confidence index (monthly indicator)".into(),
            ),
            ("euribor3m".into(), "Euribor 3 month rate".into()),
            (
                "nr_employed".into(),
                "Number of employees (quarterly indicator, thousands)".into(),
            ),
        ],
        target: "subscribed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(500, 0);
        assert_eq!(ds.shape_counts(), (8, 10));
    }

    #[test]
    fn pdays_sentinel_consistent_with_poutcome() {
        let ds = generate(400, 1);
        let pout = ds.frame.column("poutcome").unwrap().to_keys();
        let pdays = ds.frame.column("pdays").unwrap().to_f64();
        for (p, d) in pout.iter().zip(&pdays) {
            if p.as_deref() == Some("nonexistent") {
                assert_eq!(d.unwrap(), 999.0);
            } else {
                assert!(d.unwrap() < 999.0);
            }
        }
    }

    #[test]
    fn duration_is_the_dominant_raw_signal() {
        let ds = generate(4000, 2);
        let y = ds.frame.to_labels("subscribed").unwrap();
        let dur = ds.frame.column("duration").unwrap().to_f64();
        let mi = smartfeat_frame::stats::mutual_information(&dur, &y, 10);
        assert!(mi > 0.05, "duration MI = {mi}");
    }
}
