//! Adult (census-income-style): 30 163 rows, 8 categorical + 6 numeric,
//! Society.
//!
//! This is the dataset where the paper reports SMARTFEAT's largest gain
//! (+13.3 % average AUC). The label depends on *derived* quantities: the
//! log of the heavy-tailed capital gain, per-occupation and per-marital
//! income rates (group-by recoverable), a prime-earning-age band, and a
//! full-time-hours step — none of which raw linear models see well.

use smartfeat_frame::{Column, DataFrame};

use crate::common::{
    category_effect, label_from_score, norm, pick, pick_weighted, rng_for, uniform, Dataset,
};

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Adult", seed);
    let workclasses = [
        "private",
        "self-emp",
        "federal-gov",
        "state-gov",
        "local-gov",
    ];
    let educations = [
        ("hs-grad", 10.0),
        ("some-college", 7.0),
        ("bachelors", 5.0),
        ("masters", 2.0),
        ("doctorate", 0.5),
        ("assoc", 2.5),
        ("11th", 1.5),
    ];
    let maritals = [
        ("married-civ-spouse", 5.0),
        ("never-married", 4.0),
        ("divorced", 2.0),
        ("widowed", 0.5),
    ];
    let occupations = [
        "exec-managerial",
        "prof-specialty",
        "craft-repair",
        "adm-clerical",
        "sales",
        "other-service",
        "machine-op",
        "transport",
        "handlers",
        "tech-support",
        "protective-serv",
        "farming-fishing",
        "priv-house-serv",
        "armed-forces",
        "cleaners",
        "drivers",
        "it-consulting",
        "legal-services",
        "healthcare-support",
        "construction",
        "food-service",
        "education-aides",
        "finance-ops",
        "logistics",
    ];
    let relationships = ["husband", "not-in-family", "own-child", "unmarried", "wife"];
    let races = [
        ("white", 8.0),
        ("black", 1.0),
        ("asian-pac", 0.5),
        ("other", 0.3),
    ];
    let countries = [
        ("united-states", 9.0),
        ("mexico", 0.4),
        ("philippines", 0.2),
        ("germany", 0.2),
    ];

    let edu_num = |e: &str| -> f64 {
        match e {
            "11th" => 7.0,
            "hs-grad" => 9.0,
            "some-college" => 10.0,
            "assoc" => 11.0,
            "bachelors" => 13.0,
            "masters" => 14.0,
            "doctorate" => 16.0,
            _ => 9.0,
        }
    };

    let mut cat_cols: Vec<Vec<String>> = (0..8).map(|_| Vec::with_capacity(rows)).collect();
    let mut age = Vec::with_capacity(rows);
    let mut fnlwgt = Vec::with_capacity(rows);
    let mut education_num = Vec::with_capacity(rows);
    let mut capital_gain = Vec::with_capacity(rows);
    let mut capital_loss = Vec::with_capacity(rows);
    let mut hours = Vec::with_capacity(rows);
    let mut label = Vec::with_capacity(rows);

    for _ in 0..rows {
        let wc = *pick(&mut rng, &workclasses);
        let edu = *pick_weighted(&mut rng, &educations);
        let mar = *pick_weighted(&mut rng, &maritals);
        let occ = *pick(&mut rng, &occupations);
        let rel = *pick(&mut rng, &relationships);
        let race = *pick_weighted(&mut rng, &races);
        let sex = if uniform(&mut rng, 0.0, 1.0) < 0.67 {
            "male"
        } else {
            "female"
        };
        let country = *pick_weighted(&mut rng, &countries);

        let a = (17.0 + uniform(&mut rng, 0.0, 1.0).powf(1.3) * 60.0).round();
        let w = (20_000.0 + uniform(&mut rng, 0.0, 1.0) * 400_000.0).round();
        let en = edu_num(edu);
        // A latent "prosperity" of the worker's occupation/class/education
        // mix drives both the label and the scale of capital gains — so
        // the per-category *mean* capital gain is a denoised view of each
        // category's effect, recoverable by GroupbyThenAgg.
        let prosperity = category_effect(occ)
            + 0.6 * category_effect(wc)
            + 0.5 * category_effect(edu)
            + 0.4 * category_effect(mar);
        let cg = if uniform(&mut rng, 0.0, 1.0) < 0.7 {
            0.0
        } else {
            (10f64.powf(uniform(&mut rng, 2.0, 3.4) + 0.9 * prosperity)).round()
        };
        let cl = if uniform(&mut rng, 0.0, 1.0) < 0.95 {
            0.0
        } else {
            (uniform(&mut rng, 200.0, 2500.0)).round()
        };
        let h = (20.0 + uniform(&mut rng, 0.0, 1.0) * 50.0).round();

        let mut score = -2.2;
        score += 0.5 * ((1.0 + cg).ln() / 9.0); // log-gain, derived
        score += 1.6 * prosperity; // categorical mix (group-by view)
                                   // Prime-age band: U-shaped in raw age, flat for linear models.
        score += 1.1 * f64::from((35.0..55.0).contains(&a));
        score -= 0.5 * f64::from(a < 25.0);
        score += 0.7 * f64::from(h >= 40.0); // full-time step
        score += 0.3 * (en - 9.0); // education years, raw linear
        score += 0.3 * f64::from(sex == "male");
        score -= 0.3 * f64::from(cl > 0.0);
        score += 0.4 * norm(&mut rng);
        label.push(label_from_score(&mut rng, 1.2 * score));

        for (v, i) in [
            (wc, 0usize),
            (edu, 1),
            (mar, 2),
            (occ, 3),
            (rel, 4),
            (race, 5),
            (sex, 6),
            (country, 7),
        ] {
            cat_cols[i].push(v.to_string());
        }
        age.push(a as i64);
        fnlwgt.push(w);
        education_num.push(en);
        capital_gain.push(cg);
        capital_loss.push(cl);
        hours.push(h);
    }

    let cat_names = [
        "workclass",
        "education",
        "marital_status",
        "occupation",
        "relationship",
        "race",
        "sex",
        "native_country",
    ];
    let mut columns = Vec::new();
    for (name, values) in cat_names.iter().zip(cat_cols) {
        columns.push(Column::from_strs(
            *name,
            values.into_iter().map(Some).collect(),
        ));
    }
    columns.extend([
        Column::from_i64("age", age),
        Column::from_f64("fnlwgt", fnlwgt),
        Column::from_f64("education_num", education_num),
        Column::from_f64("capital_gain", capital_gain),
        Column::from_f64("capital_loss", capital_loss),
        Column::from_f64("hours_per_week", hours),
        Column::from_i64("income_over_50k", label),
    ]);
    let frame = DataFrame::from_columns(columns).expect("valid frame");

    Dataset {
        name: "Adult",
        field: "Society",
        frame,
        descriptions: vec![
            ("workclass".into(), "Employer type of the worker".into()),
            (
                "education".into(),
                "Highest education level attained".into(),
            ),
            (
                "marital_status".into(),
                "Marital status of the worker".into(),
            ),
            (
                "occupation".into(),
                "Occupation category of the worker".into(),
            ),
            (
                "relationship".into(),
                "Relationship of the worker within the household".into(),
            ),
            ("race".into(), "Race of the worker".into()),
            ("sex".into(), "Sex of the worker".into()),
            (
                "native_country".into(),
                "Native country of the worker".into(),
            ),
            ("age".into(), "Age of the worker in years".into()),
            ("fnlwgt".into(), "Census final sampling weight".into()),
            (
                "education_num".into(),
                "Years of education completed".into(),
            ),
            (
                "capital_gain".into(),
                "Capital gains income in dollars (heavy-tailed, mostly zero)".into(),
            ),
            ("capital_loss".into(), "Capital losses in dollars".into()),
            ("hours_per_week".into(), "Hours worked per week".into()),
        ],
        target: "income_over_50k",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(600, 0);
        assert_eq!(ds.shape_counts(), (8, 6));
    }

    #[test]
    fn capital_gain_is_heavy_tailed() {
        let ds = generate(2000, 1);
        let cg = ds.frame.column("capital_gain").unwrap().to_f64();
        let zeros = cg.iter().filter(|v| **v == Some(0.0)).count();
        let max = cg.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        assert!(zeros > 1200, "zeros = {zeros}");
        assert!(max > 5_000.0, "max = {max}");
    }

    #[test]
    fn occupation_rates_differ_for_groupby_signal() {
        let ds = generate(8000, 2);
        let y = ds.frame.to_labels("income_over_50k").unwrap();
        let occ = ds.frame.column("occupation").unwrap().to_keys();
        let mut rates: std::collections::HashMap<String, (usize, usize)> = Default::default();
        for (o, &l) in occ.iter().zip(&y) {
            let e = rates.entry(o.clone().unwrap()).or_default();
            e.0 += usize::from(l == 1);
            e.1 += 1;
        }
        let values: Vec<f64> = rates.values().map(|(h, n)| *h as f64 / *n as f64).collect();
        let max = values.iter().copied().fold(0.0f64, f64::max);
        let min = values.iter().copied().fold(1.0f64, f64::min);
        assert!(max - min > 0.15, "occupation rate spread {min}..{max}");
    }

    #[test]
    fn prime_age_band_signal() {
        let ds = generate(8000, 3);
        let y = ds.frame.to_labels("income_over_50k").unwrap();
        let age = ds.frame.column("age").unwrap().to_f64();
        let rate = |lo: f64, hi: f64| {
            let mut hits = 0;
            let mut n = 0;
            for (a, &l) in age.iter().zip(&y) {
                let a = a.unwrap();
                if a >= lo && a < hi {
                    hits += usize::from(l == 1);
                    n += 1;
                }
            }
            hits as f64 / n.max(1) as f64
        };
        assert!(rate(35.0, 55.0) > rate(17.0, 30.0) + 0.1);
    }
}
