//! # smartfeat-datasets
//!
//! Seeded synthetic generators reproducing the paper's eight evaluation
//! datasets (Table 3): Diabetes, Heart, Bank, Adult, Housing, Lawschool,
//! West Nile Virus, and Tennis.
//!
//! The real datasets are Kaggle downloads we cannot ship; these generators
//! match their **shape** (row counts, categorical/numeric column splits,
//! field) and — more importantly — their **signal structure**: each label
//! is generated from *derived* quantities (clinically bucketized
//! measurements, per-group historical rates, ratios, weighted indices,
//! world-knowledge lookups) plus noise. A feature-engineering tool that
//! reconstructs those derivations gains AUC; context-free expansion mostly
//! adds noise. Two datasets (Bank, Lawschool) are deliberately
//! "well-constructed" — their labels depend almost linearly on the raw
//! features — reproducing the paper's observation that feature engineering
//! barely moves them.
//!
//! Every dataset ships a data card (per-column descriptions) used to build
//! the [`smartfeat::DataAgenda`]; Tennis uses the paper's abbreviated
//! column names (`FSP.1`, …), powering the feature-description ablation.

pub mod adult;
pub mod bank;
pub mod common;
pub mod diabetes;
pub mod heart;
pub mod housing;
pub mod insurance;
pub mod lawschool;
pub mod tennis;
pub mod wnv;

pub use common::Dataset;

/// Paper row counts (Table 3).
pub const PAPER_ROWS: &[(&str, usize)] = &[
    ("Diabetes", 769),
    ("Heart", 3657),
    ("Bank", 41189),
    ("Adult", 30163),
    ("Housing", 20641),
    ("Lawschool", 4591),
    ("West Nile Virus", 10507),
    ("Tennis", 944),
];

/// Generate one dataset by paper name with an explicit row count.
pub fn by_name(name: &str, rows: usize, seed: u64) -> Option<Dataset> {
    match name {
        "Diabetes" => Some(diabetes::generate(rows, seed)),
        "Heart" => Some(heart::generate(rows, seed)),
        "Bank" => Some(bank::generate(rows, seed)),
        "Adult" => Some(adult::generate(rows, seed)),
        "Housing" => Some(housing::generate(rows, seed)),
        "Lawschool" => Some(lawschool::generate(rows, seed)),
        "West Nile Virus" => Some(wnv::generate(rows, seed)),
        "Tennis" => Some(tennis::generate(rows, seed)),
        _ => None,
    }
}

/// All eight datasets at their paper sizes.
pub fn all_paper_size(seed: u64) -> Vec<Dataset> {
    PAPER_ROWS
        .iter()
        .map(|(name, rows)| by_name(name, *rows, seed).expect("known dataset"))
        .collect()
}

/// All eight datasets scaled to `fraction` of their paper sizes (minimum
/// 200 rows) — for fast benchmark/smoke runs.
pub fn all_scaled(fraction: f64, seed: u64) -> Vec<Dataset> {
    PAPER_ROWS
        .iter()
        .map(|(name, rows)| {
            let n = ((*rows as f64 * fraction) as usize).max(200);
            by_name(name, n, seed).expect("known dataset")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_exist_with_paper_shapes() {
        let sets = all_scaled(0.05, 1);
        assert_eq!(sets.len(), 8);
        // Shape assertions per Table 3 (categorical / numeric counts
        // exclude the prediction class, matching the paper's table).
        let expected: &[(&str, usize, usize)] = &[
            ("Diabetes", 0, 9),
            ("Heart", 7, 7),
            ("Bank", 8, 10),
            ("Adult", 8, 6),
            ("Housing", 1, 8),
            ("Lawschool", 5, 7),
            ("West Nile Virus", 3, 8),
            ("Tennis", 0, 12),
        ];
        for ((name, n_cat, n_num), ds) in expected.iter().zip(&sets) {
            assert_eq!(ds.name, *name);
            let (cat, num) = ds.shape_counts();
            assert_eq!(cat, *n_cat, "{name} categorical count");
            assert_eq!(num, *n_num, "{name} numeric count");
        }
    }

    #[test]
    fn paper_sizes_match_table3() {
        for (name, rows) in PAPER_ROWS {
            let ds = by_name(name, 250, 7).unwrap();
            assert_eq!(ds.frame.n_rows(), 250);
            assert!(*rows >= 700, "paper sizes all ≥ 700");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("Titanic", 100, 0).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = by_name("Adult", 300, 9).unwrap();
        let b = by_name("Adult", 300, 9).unwrap();
        assert_eq!(a.frame.head(20), b.frame.head(20));
        let c = by_name("Adult", 300, 10).unwrap();
        assert_ne!(a.frame.head(20), c.frame.head(20));
    }

    #[test]
    fn labels_are_binary_and_balancedish() {
        for ds in all_scaled(0.05, 3) {
            let y = ds.frame.to_labels(ds.target).unwrap();
            let pos: usize = y.iter().map(|&v| v as usize).sum();
            let frac = pos as f64 / y.len() as f64;
            assert!(
                (0.08..=0.92).contains(&frac),
                "{}: positive fraction {frac}",
                ds.name
            );
        }
    }

    #[test]
    fn descriptions_cover_every_feature() {
        for ds in all_scaled(0.05, 3) {
            for col in ds.frame.column_names() {
                if col == ds.target {
                    continue;
                }
                assert!(
                    ds.descriptions
                        .iter()
                        .any(|(n, d)| n == col && !d.is_empty()),
                    "{}: column {col} lacks a description",
                    ds.name
                );
            }
        }
    }
}
