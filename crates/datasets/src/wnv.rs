//! West Nile Virus (mosquito-surveillance-style): 10 507 rows,
//! 3 categorical + 8 numeric, Disease.
//!
//! Signal: per-species and per-trap infection base rates (the structure the
//! paper says high-order operators recover best on this dataset), a
//! late-summer week window, warm-temperature effect, and the log of the
//! mosquito count.

use smartfeat_frame::{Column, DataFrame};
use smartfeat_rng::Rng;

use crate::common::{
    category_effect, label_from_score, norm, pick_weighted, rng_for, uniform, Dataset,
};

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("West Nile Virus", seed);
    let species = [
        ("culex_pipiens", 4.0),
        ("culex_restuans", 3.0),
        ("culex_pipiens_restuans", 2.5),
        ("culex_salinarius", 0.6),
        ("culex_territans", 0.4),
    ];
    let trap_names: Vec<String> = (1..=40).map(|i| format!("T{i:03}")).collect();
    let streets: Vec<String> = (1..=25).map(|i| format!("street_{i}")).collect();

    let mut sp = Vec::with_capacity(rows);
    let mut trap = Vec::with_capacity(rows);
    let mut street = Vec::with_capacity(rows);
    let mut lat = Vec::with_capacity(rows);
    let mut lon = Vec::with_capacity(rows);
    let mut week = Vec::with_capacity(rows);
    let mut temp = Vec::with_capacity(rows);
    let mut precip = Vec::with_capacity(rows);
    let mut wind = Vec::with_capacity(rows);
    let mut humidity = Vec::with_capacity(rows);
    let mut mosquitos = Vec::with_capacity(rows);
    let mut label = Vec::with_capacity(rows);

    for _ in 0..rows {
        let s = *pick_weighted(&mut rng, &species);
        let t = &trap_names[rng_usize(&mut rng, trap_names.len())];
        let st = &streets[rng_usize(&mut rng, streets.len())];
        let la = 41.65 + uniform(&mut rng, 0.0, 1.0) * 0.4;
        let lo = -87.9 + uniform(&mut rng, 0.0, 1.0) * 0.4;
        let wk = (22.0 + uniform(&mut rng, 0.0, 1.0) * 18.0).round();
        let seasonal = (-((wk - 32.0) / 5.0).powi(2)).exp();
        let tp = (62.0 + seasonal * 18.0 + norm(&mut rng) * 5.0).round();
        let pr = (uniform(&mut rng, 0.0, 1.0).powi(3) * 2.0 * 100.0).round() / 100.0;
        let wd = (4.0 + norm(&mut rng).abs() * 4.0).round();
        let hu = (55.0 + norm(&mut rng) * 12.0).clamp(20.0, 100.0).round();
        // Mosquito abundance reflects how hospitable the trap site and how
        // virus-prone the species is — so per-trap and per-species *mean*
        // counts are denoised views of the same effects that drive risk.
        let s_eff = category_effect(s);
        let t_eff = category_effect(t);
        let m = (1.0
            + uniform(&mut rng, 0.0, 1.0).powi(2) * 18.0 * (1.1 + 0.45 * (s_eff + t_eff) / 2.0))
            .round()
            .clamp(1.0, 60.0);

        let mut score = -2.4;
        score += 1.1 * s_eff; // species base rate (group-by view)
        score += 1.5 * t_eff; // trap base rate: 40 keys, hard for raw trees
        score += 1.2 * f64::from((28.0..=36.0).contains(&wk)); // peak season band
        score += 1.0 * f64::from(tp >= 75.0); // activity threshold
        score -= 0.2 * (wd / 8.0);
        score += 0.35 * norm(&mut rng);
        label.push(label_from_score(&mut rng, 1.4 * score));

        sp.push(s.to_string());
        trap.push(t.clone());
        street.push(st.clone());
        lat.push((la * 1000.0).round() / 1000.0);
        lon.push((lo * 1000.0).round() / 1000.0);
        week.push(wk as i64);
        temp.push(tp);
        precip.push(pr);
        wind.push(wd);
        humidity.push(hu);
        mosquitos.push(m);
    }

    let frame = DataFrame::from_columns(vec![
        Column::from_strs("species", sp.into_iter().map(Some).collect()),
        Column::from_strs("trap", trap.into_iter().map(Some).collect()),
        Column::from_strs("street", street.into_iter().map(Some).collect()),
        Column::from_f64("latitude", lat),
        Column::from_f64("longitude", lon),
        Column::from_i64("week", week),
        Column::from_f64("avg_temperature", temp),
        Column::from_f64("precipitation", precip),
        Column::from_f64("wind_speed", wind),
        Column::from_f64("humidity", humidity),
        Column::from_f64("num_mosquitos", mosquitos),
        Column::from_i64("wnv_present", label),
    ])
    .expect("valid frame");

    Dataset {
        name: "West Nile Virus",
        field: "Disease",
        frame,
        descriptions: vec![
            (
                "species".into(),
                "Mosquito species captured in the trap".into(),
            ),
            (
                "trap".into(),
                "Surveillance trap in which the sample was collected".into(),
            ),
            (
                "street".into(),
                "Street block of the collection site".into(),
            ),
            ("latitude".into(), "Latitude of the trap".into()),
            ("longitude".into(), "Longitude of the trap".into()),
            ("week".into(), "Week of the year of the observation".into()),
            (
                "avg_temperature".into(),
                "Average temperature that week (Fahrenheit)".into(),
            ),
            (
                "precipitation".into(),
                "Total precipitation that week (inches)".into(),
            ),
            (
                "wind_speed".into(),
                "Average wind speed that week (mph)".into(),
            ),
            (
                "humidity".into(),
                "Average relative humidity that week (percent)".into(),
            ),
            (
                "num_mosquitos".into(),
                "Number of mosquitos caught in the collected sample".into(),
            ),
        ],
        target: "wnv_present",
    }
}

fn rng_usize(rng: &mut Rng, n: usize) -> usize {
    rng.gen_range(0..n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(500, 0);
        assert_eq!(ds.shape_counts(), (3, 8));
    }

    #[test]
    fn species_rates_differ_for_groupby_signal() {
        let ds = generate(6000, 1);
        let y = ds.frame.to_labels("wnv_present").unwrap();
        let sp = ds.frame.column("species").unwrap().to_keys();
        let mut rates: std::collections::HashMap<String, (usize, usize)> = Default::default();
        for (s, &l) in sp.iter().zip(&y) {
            let e = rates.entry(s.clone().unwrap()).or_default();
            e.0 += usize::from(l == 1);
            e.1 += 1;
        }
        let values: Vec<f64> = rates
            .values()
            .filter(|(_, n)| *n > 50)
            .map(|(h, n)| *h as f64 / *n as f64)
            .collect();
        let spread = values.iter().copied().fold(0.0f64, f64::max)
            - values.iter().copied().fold(1.0f64, f64::min);
        assert!(spread > 0.15, "species rate spread {spread}");
    }

    #[test]
    fn temperature_peaks_midseason() {
        let ds = generate(3000, 2);
        let wk = ds.frame.column("week").unwrap().to_f64();
        let tp = ds.frame.column("avg_temperature").unwrap().to_f64();
        let mean_at = |lo: f64, hi: f64| {
            let vals: Vec<f64> = wk
                .iter()
                .zip(&tp)
                .filter(|(w, _)| {
                    let w = w.unwrap();
                    w >= lo && w < hi
                })
                .map(|(_, t)| t.unwrap())
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(mean_at(30.0, 34.0) > mean_at(22.0, 25.0) + 5.0);
    }

    #[test]
    fn trap_cardinality_reasonable() {
        let ds = generate(2000, 3);
        let card = ds.frame.column("trap").unwrap().cardinality();
        assert!(card > 20 && card <= 40, "{card} traps");
    }
}
