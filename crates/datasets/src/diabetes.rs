//! Diabetes (Pima-style): 769 rows, 9 numeric columns, Health.
//!
//! Signal structure: the outcome follows clinical threshold effects —
//! ADA glucose cutoffs (100 / 126 mg/dL), WHO BMI classes, an age-45
//! risk step — plus a mild pedigree effect. Clinically-informed
//! bucketization (which the knowledge-equipped FM proposes) recovers the
//! thresholds; raw linear models only see the smoothed version.
//!
//! The `Insulin` column contains genuine zeros (as the real Pima data
//! does). An unguarded `x / Insulin` transformation — CAAFE's observed
//! Diabetes failure — therefore divides by zero.

use smartfeat_frame::{Column, DataFrame};

use crate::common::{label_from_score, norm, rng_for, uniform, Dataset};

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Diabetes", seed);
    let mut pregnancies = Vec::with_capacity(rows);
    let mut glucose = Vec::with_capacity(rows);
    let mut blood_pressure = Vec::with_capacity(rows);
    let mut skin = Vec::with_capacity(rows);
    let mut insulin = Vec::with_capacity(rows);
    let mut bmi = Vec::with_capacity(rows);
    let mut pedigree = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut activity = Vec::with_capacity(rows);
    let mut outcome = Vec::with_capacity(rows);

    for _ in 0..rows {
        let a = (21.0 + uniform(&mut rng, 0.0, 1.0).powi(2) * 50.0).round();
        let g = (85.0 + norm(&mut rng).abs() * 35.0).min(199.0).round();
        let bp = (60.0 + norm(&mut rng) * 12.0 + a * 0.2)
            .clamp(40.0, 120.0)
            .round();
        let s = (20.0 + norm(&mut rng) * 8.0).clamp(7.0, 60.0).round();
        // Some insulin measurements are missing-as-zero (as in Pima) —
        // rare enough that a small sample of rows usually shows none.
        let ins = if uniform(&mut rng, 0.0, 1.0) < 0.10 {
            0.0
        } else {
            (80.0 + norm(&mut rng) * 60.0).clamp(15.0, 600.0).round()
        };
        let b = (22.0 + norm(&mut rng).abs() * 7.0).clamp(15.0, 60.0);
        let p = (0.4 + norm(&mut rng).abs() * 0.3).clamp(0.05, 2.5);
        let preg = (uniform(&mut rng, 0.0, 1.0).powi(2) * 12.0).round();
        let act = (uniform(&mut rng, 0.0, 1.0) * 12.0 * 10.0).round() / 10.0;

        // Clinical signal with three layers: thresholds recoverable by
        // domain bucketization, an insulin-resistance *ratio* marker that
        // only a glucose/insulin feature exposes, and a mild linear part
        // that raw models can already see.
        let mut score = -2.0;
        score += 1.6 * f64::from(g >= 126.0);
        score += 0.7 * f64::from((100.0..126.0).contains(&g));
        score += 0.8 * f64::from(b >= 30.0);
        score += 0.5 * f64::from(a >= 45.0);
        score += 1.0 * (p - 0.4);
        // Insulin-resistance marker: high glucose relative to measured
        // insulin. A curved 2-D boundary in raw space; one threshold on
        // the ratio feature.
        if ins > 0.0 {
            score += 1.5 * f64::from(g / ins > 1.6);
        } else {
            score += 0.5; // unmeasured insulin is itself a weak risk marker
        }
        score += 0.25 * (g - 110.0) / 30.0;
        score -= 0.05 * act;
        score += 0.3 * norm(&mut rng);
        outcome.push(label_from_score(&mut rng, 1.6 * score));

        pregnancies.push(preg as i64);
        glucose.push(g);
        blood_pressure.push(bp);
        skin.push(s);
        insulin.push(ins);
        bmi.push((b * 10.0).round() / 10.0);
        pedigree.push((p * 1000.0).round() / 1000.0);
        age.push(a as i64);
        activity.push(act);
    }

    let frame = DataFrame::from_columns(vec![
        Column::from_i64("Pregnancies", pregnancies),
        Column::from_f64("Glucose", glucose),
        Column::from_f64("BloodPressure", blood_pressure),
        Column::from_f64("SkinThickness", skin),
        Column::from_f64("Insulin", insulin),
        Column::from_f64("BMI", bmi),
        Column::from_f64("DiabetesPedigree", pedigree),
        Column::from_i64("Age", age),
        Column::from_f64("PhysicalActivity", activity),
        Column::from_i64("Outcome", outcome),
    ])
    .expect("valid frame");

    Dataset {
        name: "Diabetes",
        field: "Health",
        frame,
        descriptions: vec![
            ("Pregnancies".into(), "Number of times pregnant".into()),
            (
                "Glucose".into(),
                "Plasma glucose concentration after an oral glucose tolerance test (mg/dL)".into(),
            ),
            (
                "BloodPressure".into(),
                "Diastolic blood pressure (mm Hg)".into(),
            ),
            (
                "SkinThickness".into(),
                "Triceps skin fold thickness (mm)".into(),
            ),
            (
                "Insulin".into(),
                "Two-hour serum insulin (mu U/ml); zero indicates a missing measurement".into(),
            ),
            (
                "BMI".into(),
                "Body mass index (weight in kg / height in m squared)".into(),
            ),
            (
                "DiabetesPedigree".into(),
                "Diabetes pedigree function scoring family history".into(),
            ),
            ("Age".into(), "Age of the patient in years".into()),
            (
                "PhysicalActivity".into(),
                "Hours of physical activity per week reported by the patient".into(),
            ),
        ],
        target: "Outcome",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(769, 0);
        assert_eq!(ds.frame.n_rows(), 769);
        let (cat, num) = ds.shape_counts();
        assert_eq!((cat, num), (0, 9));
    }

    #[test]
    fn insulin_has_zeros_for_caafe_failure_mode() {
        let ds = generate(500, 1);
        let zeros = ds
            .frame
            .column("Insulin")
            .unwrap()
            .to_f64()
            .iter()
            .filter(|v| **v == Some(0.0))
            .count();
        assert!(zeros > 20, "only {zeros} zero insulin values");
    }

    #[test]
    fn glucose_threshold_carries_signal() {
        let ds = generate(769, 2);
        let y = ds.frame.to_labels("Outcome").unwrap();
        let g = ds.frame.column("Glucose").unwrap().to_f64();
        let mut rate_high = (0usize, 0usize);
        let mut rate_low = (0usize, 0usize);
        for (v, &label) in g.iter().zip(&y) {
            let v = v.unwrap();
            if v >= 126.0 {
                rate_high.0 += usize::from(label == 1);
                rate_high.1 += 1;
            } else if v < 100.0 {
                rate_low.0 += usize::from(label == 1);
                rate_low.1 += 1;
            }
        }
        let high = rate_high.0 as f64 / rate_high.1 as f64;
        let low = rate_low.0 as f64 / rate_low.1 as f64;
        assert!(high > low + 0.2, "high {high} vs low {low}");
    }

    #[test]
    fn plausible_clinical_ranges() {
        let ds = generate(400, 3);
        let bmi = ds.frame.column("BMI").unwrap().to_f64();
        assert!(bmi.iter().flatten().all(|&v| (15.0..=60.0).contains(&v)));
        let age = ds.frame.column("Age").unwrap().to_f64();
        assert!(age.iter().flatten().all(|&v| (21.0..=75.0).contains(&v)));
    }
}
