//! Heart (Framingham-style): 3 657 rows, 7 categorical + 7 numeric, Health.
//!
//! Signal: clinical thresholds (cholesterol 200/240, diastolic BP 80/90,
//! BMI 30, age 55), a smoking-intensity interaction, and modest per-category
//! effects recoverable by group-by rates. Heavy label noise keeps the
//! initial AUC in the high-60s, as in the paper.

use smartfeat_frame::{Column, DataFrame};

use crate::common::{
    category_effect, label_from_score, norm, pick_weighted, rng_for, uniform, Dataset,
};

/// Generate the dataset.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = rng_for("Heart", seed);
    let educations = [
        ("some_highschool", 3.0),
        ("highschool_ged", 3.0),
        ("some_college", 2.0),
        ("college_degree", 1.5),
    ];
    let yes_no = |rng: &mut _, p: f64| -> &'static str {
        if uniform(rng, 0.0, 1.0) < p {
            "yes"
        } else {
            "no"
        }
    };

    let mut sex = Vec::with_capacity(rows);
    let mut education = Vec::with_capacity(rows);
    let mut smoker = Vec::with_capacity(rows);
    let mut bp_meds = Vec::with_capacity(rows);
    let mut stroke = Vec::with_capacity(rows);
    let mut hyp = Vec::with_capacity(rows);
    let mut diabetes = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut cigs = Vec::with_capacity(rows);
    let mut chol = Vec::with_capacity(rows);
    let mut sys_bp = Vec::with_capacity(rows);
    let mut dia_bp = Vec::with_capacity(rows);
    let mut bmi = Vec::with_capacity(rows);
    let mut heart_rate = Vec::with_capacity(rows);
    let mut label = Vec::with_capacity(rows);

    for _ in 0..rows {
        let s = if uniform(&mut rng, 0.0, 1.0) < 0.45 {
            "M"
        } else {
            "F"
        };
        let edu = *pick_weighted(&mut rng, &educations);
        let a = (32.0 + uniform(&mut rng, 0.0, 1.0) * 38.0).round();
        let smk = yes_no(&mut rng, 0.49);
        let c = if smk == "yes" {
            (uniform(&mut rng, 0.0, 1.0) * 40.0).round()
        } else {
            0.0
        };
        // Cholesterol tracks diet, which tracks the education mix — so the
        // per-education *mean* cholesterol is a denoised view of the same
        // effect that shifts each group's risk.
        let edu_eff = category_effect(edu);
        let ch = (180.0 + norm(&mut rng) * 40.0 + a * 0.5 - 14.0 * edu_eff)
            .clamp(110.0, 420.0)
            .round();
        // Latent (true) blood pressure drives risk; the measured values add
        // a shared white-coat inflation that a single reading can't remove.
        let dbp_true = (70.0 + norm(&mut rng) * 11.0 + a * 0.15).clamp(45.0, 130.0);
        let white_coat = norm(&mut rng).abs() * 14.0;
        let dbp = (dbp_true + white_coat).clamp(45.0, 150.0).round();
        let sbp = (dbp_true + 40.0 + white_coat * 1.2 + norm(&mut rng) * 6.0)
            .clamp(85.0, 240.0)
            .round();
        let b = (24.0 + norm(&mut rng) * 4.0).clamp(15.0, 55.0);
        let hr = (72.0 + norm(&mut rng) * 11.0).clamp(44.0, 130.0).round();
        let bpm = yes_no(&mut rng, 0.03);
        let stk = yes_no(&mut rng, 0.01);
        let hy = if dbp >= 90.0 || sbp >= 140.0 {
            "yes"
        } else {
            yes_no(&mut rng, 0.05)
        };
        let dia = yes_no(&mut rng, 0.03);

        let mut score = -2.6;
        score += 1.1 * f64::from(ch >= 240.0) + 0.5 * f64::from((200.0..240.0).contains(&ch));
        // Risk follows the *true* diastolic pressure, not the inflated
        // reading; the systolic/diastolic relation partially de-noises it.
        score +=
            1.0 * f64::from(dbp_true >= 90.0) + 0.5 * f64::from((80.0..90.0).contains(&dbp_true));
        // Wide pulse-pressure ratio: a marker carried by the observed
        // systolic/diastolic *ratio*, which the clinical-ratio operator
        // exposes as a single feature.
        score += 0.9 * f64::from(sbp / dbp >= 1.62);
        score += 0.6 * f64::from(b >= 30.0);
        score += 0.9 * f64::from(a >= 55.0);
        // Pack-years: cumulative smoking exposure, an interaction that
        // only a cigs × age feature exposes directly.
        score += 2.4 * f64::from(c * a >= 700.0);
        score += 0.6 * f64::from(dia == "yes") + 0.5 * f64::from(stk == "yes");
        score += 0.3 * f64::from(s == "M");
        score += 0.9 * category_effect(edu);
        score += 0.7 * norm(&mut rng); // heavy noise → initial AUC ≈ high 60s
        label.push(label_from_score(&mut rng, score));

        sex.push(s);
        education.push(edu);
        smoker.push(smk);
        bp_meds.push(bpm);
        stroke.push(stk);
        hyp.push(hy);
        diabetes.push(dia);
        age.push(a as i64);
        cigs.push(c);
        chol.push(ch);
        sys_bp.push(sbp);
        dia_bp.push(dbp);
        bmi.push((b * 10.0).round() / 10.0);
        heart_rate.push(hr);
    }

    let frame = DataFrame::from_columns(vec![
        Column::from_str_slice("sex", &sex),
        Column::from_str_slice("education", &education),
        Column::from_str_slice("current_smoker", &smoker),
        Column::from_str_slice("bp_meds", &bp_meds),
        Column::from_str_slice("prevalent_stroke", &stroke),
        Column::from_str_slice("prevalent_hyp", &hyp),
        Column::from_str_slice("diabetes", &diabetes),
        Column::from_i64("age", age),
        Column::from_f64("cigs_per_day", cigs),
        Column::from_f64("total_cholesterol", chol),
        Column::from_f64("systolic_bp", sys_bp),
        Column::from_f64("diastolic_bp", dia_bp),
        Column::from_f64("bmi", bmi),
        Column::from_f64("heart_rate", heart_rate),
        Column::from_i64("ten_year_chd", label),
    ])
    .expect("valid frame");

    Dataset {
        name: "Heart",
        field: "Health",
        frame,
        descriptions: vec![
            ("sex".into(), "Sex of the participant (M/F)".into()),
            (
                "education".into(),
                "Highest education level attained".into(),
            ),
            (
                "current_smoker".into(),
                "Whether the participant currently smokes".into(),
            ),
            (
                "bp_meds".into(),
                "Whether the participant takes blood pressure medication".into(),
            ),
            (
                "prevalent_stroke".into(),
                "Whether the participant previously had a stroke".into(),
            ),
            (
                "prevalent_hyp".into(),
                "Whether the participant is hypertensive".into(),
            ),
            (
                "diabetes".into(),
                "Whether the participant has diabetes".into(),
            ),
            ("age".into(), "Age of the participant in years".into()),
            (
                "cigs_per_day".into(),
                "Number of cigarettes smoked per day".into(),
            ),
            (
                "total_cholesterol".into(),
                "Total cholesterol level (mg/dL)".into(),
            ),
            (
                "systolic_bp".into(),
                "Systolic blood pressure (mm Hg)".into(),
            ),
            (
                "diastolic_bp".into(),
                "Diastolic blood pressure (mm Hg)".into(),
            ),
            ("bmi".into(), "Body mass index".into()),
            (
                "heart_rate".into(),
                "Resting heart rate (beats per minute)".into(),
            ),
        ],
        target: "ten_year_chd",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table3() {
        let ds = generate(400, 0);
        assert_eq!(ds.shape_counts(), (7, 7));
    }

    #[test]
    fn hypertension_consistent_with_bp() {
        let ds = generate(500, 1);
        let dbp = ds.frame.column("diastolic_bp").unwrap().to_f64();
        let hyp = ds.frame.column("prevalent_hyp").unwrap().to_keys();
        for (bp, h) in dbp.iter().zip(&hyp) {
            if bp.unwrap() >= 90.0 {
                assert_eq!(h.as_deref(), Some("yes"));
            }
        }
    }

    #[test]
    fn nonsmokers_report_zero_cigs() {
        let ds = generate(300, 2);
        let smoker = ds.frame.column("current_smoker").unwrap().to_keys();
        let cigs = ds.frame.column("cigs_per_day").unwrap().to_f64();
        for (s, c) in smoker.iter().zip(&cigs) {
            if s.as_deref() == Some("no") {
                assert_eq!(c.unwrap(), 0.0);
            }
        }
    }

    #[test]
    fn cholesterol_threshold_carries_signal() {
        let ds = generate(3000, 3);
        let y = ds.frame.to_labels("ten_year_chd").unwrap();
        let ch = ds.frame.column("total_cholesterol").unwrap().to_f64();
        let rate = |pred: &dyn Fn(f64) -> bool| {
            let mut hits = 0;
            let mut n = 0;
            for (v, &l) in ch.iter().zip(&y) {
                if pred(v.unwrap()) {
                    hits += usize::from(l == 1);
                    n += 1;
                }
            }
            hits as f64 / n.max(1) as f64
        };
        assert!(rate(&|v| v >= 240.0) > rate(&|v| v < 200.0) + 0.05);
    }
}
