//! The common [`Classifier`] trait and the paper's five model kinds.

use crate::error::Result;
use crate::matrix::Matrix;

/// A binary probabilistic classifier over dense feature matrices.
pub trait Classifier {
    /// Fit on features `x` and binary labels `y` (0/1).
    fn fit(&mut self, x: &Matrix, y: &[u8]) -> Result<()>;

    /// Predicted probability of the positive class for each row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Hard 0/1 predictions at threshold 0.5.
    fn predict(&self, x: &Matrix) -> Result<Vec<u8>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| u8::from(p >= 0.5))
            .collect())
    }
}

/// The five downstream models of the paper's evaluation (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Linear model ("LR" in the tables; logistic for binary AUC).
    LR,
    /// Gaussian naive Bayes ("NB").
    NB,
    /// Random forest ("RF").
    RF,
    /// Extra-trees ("ET").
    ET,
    /// 2×100 ReLU MLP ("DNN").
    DNN,
}

impl ModelKind {
    /// All five, in the paper's table order.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::LR,
            ModelKind::NB,
            ModelKind::RF,
            ModelKind::ET,
            ModelKind::DNN,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::LR => "LR",
            ModelKind::NB => "NB",
            ModelKind::RF => "RF",
            ModelKind::ET => "ET",
            ModelKind::DNN => "DNN",
        }
    }

    /// Instantiate with default (sklearn-like) hyper-parameters and a seed.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ModelKind::LR => Box::new(crate::logistic::LogisticRegression::default_params()),
            ModelKind::NB => Box::new(crate::naive_bayes::GaussianNb::new()),
            ModelKind::RF => Box::new(crate::forest::RandomForest::default_params(seed)),
            ModelKind::ET => Box::new(crate::extra_trees::ExtraTrees::default_params(seed)),
            ModelKind::DNN => Box::new(crate::nn::MlpClassifier::default_params(seed)),
        }
    }

    /// True for models that benefit from standardized inputs
    /// (LR and the DNN; trees and NB are scale-invariant enough).
    pub fn wants_standardized_input(self) -> bool {
        matches!(self, ModelKind::LR | ModelKind::DNN)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_models() {
        let names: Vec<&str> = ModelKind::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LR", "NB", "RF", "ET", "DNN"]);
    }

    #[test]
    fn standardization_preferences() {
        assert!(ModelKind::LR.wants_standardized_input());
        assert!(ModelKind::DNN.wants_standardized_input());
        assert!(!ModelKind::RF.wants_standardized_input());
    }

    #[test]
    fn build_produces_working_models() {
        // Tiny separable problem: every model should fit and emit probabilities.
        let x = Matrix::from_rows(
            (0..40)
                .map(|i| vec![i as f64, (i % 3) as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let y: Vec<u8> = (0..40).map(|i| u8::from(i >= 20)).collect();
        for kind in ModelKind::all() {
            let mut m = kind.build(7);
            m.fit(&x, &y).unwrap();
            let p = m.predict_proba(&x).unwrap();
            assert_eq!(p.len(), 40);
            assert!(
                p.iter().all(|v| (0.0..=1.0).contains(v)),
                "{kind} probs in range"
            );
        }
    }
}
