//! Evaluation metrics: AUC (the paper's primary metric), accuracy, log-loss.

/// Area under the ROC curve via the rank statistic
/// (Mann–Whitney U), with midrank handling of tied scores.
///
/// Returns 0.5 when either class is absent (no ranking information),
/// matching the convention the paper's tables imply for degenerate folds.
///
/// ```
/// use smartfeat_ml::roc_auc;
/// assert_eq!(roc_auc(&[0, 0, 1, 1], &[0.1, 0.4, 0.6, 0.9]), 1.0);
/// assert_eq!(roc_auc(&[1, 1, 0, 0], &[0.1, 0.4, 0.6, 0.9]), 0.0);
/// ```
pub fn roc_auc(labels: &[u8], scores: &[f64]) -> f64 {
    debug_assert_eq!(labels.len(), scores.len());
    let n_pos = labels.iter().filter(|&&y| y != 0).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices by score; assign midranks to ties. Tie groups use the
    // same `total_cmp` equivalence as the sort: `==` would never group NaN
    // runs (NaN != NaN) and would merge -0.0 with 0.0, which total_cmp
    // orders apart — either way splitting or straddling sort runs.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len()
            && scores[order[j + 1]].total_cmp(&scores[order[i]]) == std::cmp::Ordering::Equal
        {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y != 0)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Fraction of predictions on the correct side of 0.5.
pub fn accuracy(labels: &[u8], scores: &[f64]) -> f64 {
    debug_assert_eq!(labels.len(), scores.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .zip(scores)
        .filter(|(&y, &s)| (s >= 0.5) == (y != 0))
        .count();
    correct as f64 / labels.len() as f64
}

/// Binary cross-entropy with probability clamping at `1e-12`.
pub fn log_loss(labels: &[u8], scores: &[f64]) -> f64 {
    debug_assert_eq!(labels.len(), scores.len());
    if labels.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = labels
        .iter()
        .zip(scores)
        .map(|(&y, &p)| {
            let p = p.clamp(eps, 1.0 - eps);
            if y != 0 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / labels.len() as f64
}

/// Mean of a slice (0.0 if empty). Tiny helper shared by the harness.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median of a slice (lower median for even lengths — matching the paper's
/// use of `numpy.median` on 5 models, which interpolates; we interpolate
/// too for even counts).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_ranking() {
        let y = [0, 0, 1, 1];
        let s = [0.1, 0.2, 0.8, 0.9];
        assert_eq!(roc_auc(&y, &s), 1.0);
    }

    #[test]
    fn auc_inverted_ranking() {
        let y = [1, 1, 0, 0];
        let s = [0.1, 0.2, 0.8, 0.9];
        assert_eq!(roc_auc(&y, &s), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let y = [0, 1, 0, 1];
        let s = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(roc_auc(&y, &s), 0.5);
    }

    #[test]
    fn auc_with_ties_uses_midranks() {
        let y = [0, 1, 1];
        let s = [0.3, 0.3, 0.9];
        // Pair (neg, pos@0.3) ties → 0.5 credit; pair (neg, pos@0.9) → 1.
        assert!((roc_auc(&y, &s) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_nan_scores_form_one_tie_group() {
        // Two NaN scores (one per class) sort adjacently under total_cmp
        // and must share a midrank: the NaN-vs-NaN pair contributes 0.5,
        // and both NaNs rank above every finite score. With `==` grouping
        // they'd get distinct ranks and the tied pair full credit.
        let y = [0, 1, 0, 1];
        let s = [f64::NAN, f64::NAN, 0.2, 0.4];
        // Pairs: (neg@0.2, pos@0.4) concordant = 1; (neg@0.2, pos@NaN) = 1;
        // (neg@NaN, pos@0.4) = 0; (neg@NaN, pos@NaN) tied = 0.5. AUC = 2.5/4.
        assert!((roc_auc(&y, &s) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn auc_signed_zero_scores_are_not_tied() {
        // total_cmp orders -0.0 below 0.0, so they are distinct ranks,
        // consistent with the sort; the ranking is deterministic and the
        // negative at -0.0 counts as strictly below the positive at 0.0.
        let y = [0, 1];
        let s = [-0.0, 0.0];
        assert_eq!(roc_auc(&y, &s), 1.0);
        // And a same-sign zero pair is a genuine tie.
        assert_eq!(roc_auc(&[0, 1], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[1, 1], &[0.2, 0.9]), 0.5);
        assert_eq!(roc_auc(&[0, 0], &[0.2, 0.9]), 0.5);
    }

    #[test]
    fn auc_known_value() {
        // 2 pos, 3 neg; one discordant pair out of 6 → AUC = 5/6.
        let y = [1, 0, 1, 0, 0];
        let s = [0.9, 0.8, 0.7, 0.3, 0.1];
        assert!((roc_auc(&y, &s) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_basic() {
        let y = [1, 0, 1, 0];
        let s = [0.9, 0.1, 0.2, 0.6];
        assert_eq!(accuracy(&y, &s), 0.5);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_clamps() {
        let y = [1];
        let s = [0.0];
        let l = log_loss(&y, &s);
        assert!(l.is_finite());
        assert!(l > 20.0); // ln(1e-12) ≈ 27.6
    }

    #[test]
    fn log_loss_confident_correct_is_small() {
        let l = log_loss(&[1, 0], &[0.99, 0.01]);
        assert!(l < 0.02);
    }

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
