//! Error type for the ML substrate.

use std::fmt;

/// Errors produced while fitting or evaluating models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// X and y disagree on sample count.
    ShapeMismatch {
        /// Rows in X.
        rows: usize,
        /// Labels in y.
        labels: usize,
    },
    /// Training data is empty.
    EmptyTrainingSet,
    /// Training labels contain a single class; binary models need both.
    SingleClass,
    /// Prediction was requested before `fit`.
    NotFitted,
    /// Feature counts differ between fit and predict.
    FeatureMismatch {
        /// Features seen at fit time.
        fitted: usize,
        /// Features supplied at predict time.
        given: usize,
    },
    /// Non-finite values encountered where finite ones are required.
    NonFinite(&'static str),
    /// Invalid hyper-parameter.
    InvalidParameter(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch { rows, labels } => {
                write!(f, "X has {rows} rows but y has {labels} labels")
            }
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::SingleClass => write!(f, "training labels contain a single class"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::FeatureMismatch { fitted, given } => {
                write!(f, "model fitted on {fitted} features, given {given}")
            }
            MlError::NonFinite(ctx) => write!(f, "non-finite values in {ctx}"),
            MlError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MlError::SingleClass.to_string().contains("single class"));
        assert!(MlError::FeatureMismatch {
            fitted: 3,
            given: 5
        }
        .to_string()
        .contains("3"));
    }
}
