//! Extremely randomized trees ("ET"): random thresholds, no bootstrap.
//!
//! Trees train in parallel with per-tree SplitMix64-derived seeds (same
//! scheme as [`crate::forest`]), so the fitted ensemble is bit-identical
//! for any thread count.

use smartfeat_rng::Rng;

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use crate::model::Classifier;
use crate::tree::{DecisionTree, MaxFeatures, SplitMode, TreeParams};
use smartfeat_rng::seed_jump;

/// Extra-trees ensemble: like a random forest but with uniform random
/// split thresholds and the full training set per tree (sklearn's
/// `ExtraTreesClassifier` defaults).
#[derive(Debug, Clone)]
pub struct ExtraTrees {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (split mode is forced to `Random`).
    pub tree_params: TreeParams,
    /// Worker threads for tree training: 0 = auto (`SMARTFEAT_THREADS`
    /// override, else hardware), 1 = exact serial path.
    pub threads: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl ExtraTrees {
    /// Defaults tracking sklearn at the benchmark grid's compute budget.
    pub fn default_params(seed: u64) -> Self {
        ExtraTrees {
            n_trees: 30,
            tree_params: TreeParams {
                max_depth: 14,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: MaxFeatures::Sqrt,
                split_mode: SplitMode::Random,
            },
            threads: 0,
            seed,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Set the training thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Mean normalized impurity-decrease importances across trees.
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut out = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (o, &v) in out.iter_mut().zip(tree.importances()) {
                *o += v;
            }
        }
        let sum: f64 = out.iter().sum();
        if sum > 0.0 {
            for v in &mut out {
                *v /= sum;
            }
        }
        Ok(out)
    }
}

impl Classifier for ExtraTrees {
    fn fit(&mut self, x: &Matrix, y: &[u8]) -> Result<()> {
        x.check_training(y)?;
        if !x.is_finite() {
            return Err(MlError::NonFinite("training features"));
        }
        let mut params = self.tree_params;
        params.split_mode = SplitMode::Random;
        self.n_features = x.cols();
        let all: Vec<usize> = (0..x.rows()).collect();
        let seed = self.seed;
        let threads = smartfeat_par::resolve_threads(self.threads);
        self.trees = smartfeat_obs::global::time("ml.extra_trees.fit", || {
            smartfeat_par::try_par_map_indexed(threads, self.n_trees, |i| {
                // sfcheck:seed-stream(0..100)
                let mut rng = Rng::seed_from_u64(seed_jump(seed, i as u64));
                let mut tree = DecisionTree::new(params);
                tree.fit_indices(x, y, &all, &mut rng).map(|()| tree)
            })
        })?;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::FeatureMismatch {
                fitted: self.n_features,
                given: x.cols(),
            });
        }
        let mut out = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (i, o) in out.iter_mut().enumerate() {
                *o += tree.predict_one(x.row(i));
            }
        }
        let k = self.trees.len() as f64;
        for o in &mut out {
            *o /= k;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;

    fn ring_data() -> (Matrix, Vec<u8>) {
        // y = 1 inside a radius — axis-aligned randomized splits handle it.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = (i % 20) as f64 / 10.0 - 1.0;
            let b = (i / 20) as f64 / 7.5 - 1.0;
            rows.push(vec![a, b]);
            y.push(u8::from(a * a + b * b < 0.5));
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn fits_nonlinear_boundary() {
        let (x, y) = ring_data();
        let mut et = ExtraTrees::default_params(3);
        et.fit(&x, &y).unwrap();
        let p = et.predict_proba(&x).unwrap();
        assert!(roc_auc(&y, &p) > 0.97);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = ring_data();
        let mut a = ExtraTrees::default_params(11);
        let mut b = ExtraTrees::default_params(11);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        let (x, y) = ring_data();
        for seed in [3u64, 11, 99] {
            let mut serial = ExtraTrees::default_params(seed).with_threads(1);
            let mut parallel = ExtraTrees::default_params(seed).with_threads(4);
            serial.fit(&x, &y).unwrap();
            parallel.fit(&x, &y).unwrap();
            let ps: Vec<u64> = serial
                .predict_proba(&x)
                .unwrap()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            let pp: Vec<u64> = parallel
                .predict_proba(&x)
                .unwrap()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            assert_eq!(ps, pp, "seed {seed}");
        }
    }

    #[test]
    fn importances_normalized() {
        let (x, y) = ring_data();
        let mut et = ExtraTrees::default_params(2);
        et.fit(&x, &y).unwrap();
        let imp = et.feature_importances().unwrap();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_class_rejected() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let mut et = ExtraTrees::default_params(0);
        assert!(matches!(et.fit(&x, &[1, 1]), Err(MlError::SingleClass)));
    }
}
