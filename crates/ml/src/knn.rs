//! k-nearest-neighbors classifier.
//!
//! Not one of the paper's five evaluation models, but the model class its
//! introduction calls out ("certain models like k-nearest-neighbors (KNN)
//! tend to perform better when the data is normalized or has similar
//! ranges") — included so the normalization operator's value can be
//! demonstrated directly (see `benches/substrates.rs` and the docs).

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use crate::model::Classifier;

/// Brute-force KNN with Euclidean distance and distance-weighted votes.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    /// Neighbors consulted per prediction.
    pub k: usize,
    x: Option<Matrix>,
    y: Vec<u8>,
}

impl KnnClassifier {
    /// sklearn's default `n_neighbors = 5`.
    pub fn new(k: usize) -> Self {
        KnnClassifier {
            k: k.max(1),
            x: None,
            y: Vec::new(),
        }
    }
}

impl Default for KnnClassifier {
    fn default() -> Self {
        KnnClassifier::new(5)
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u8]) -> Result<()> {
        x.check_training(y)?;
        if !x.is_finite() {
            return Err(MlError::NonFinite("training features"));
        }
        self.x = Some(x.clone());
        self.y = y.to_vec();
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        let train = self.x.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != train.cols() {
            return Err(MlError::FeatureMismatch {
                fitted: train.cols(),
                given: x.cols(),
            });
        }
        let k = self.k.min(train.rows());
        let mut out = Vec::with_capacity(x.rows());
        let mut heap: Vec<(f64, u8)> = Vec::with_capacity(train.rows());
        for i in 0..x.rows() {
            let q = x.row(i);
            heap.clear();
            for j in 0..train.rows() {
                let mut d2 = 0.0;
                for (a, b) in q.iter().zip(train.row(j)) {
                    let diff = a - b;
                    d2 += diff * diff;
                }
                heap.push((d2, self.y[j]));
            }
            heap.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
            // Distance-weighted vote over the k nearest.
            let mut pos = 0.0;
            let mut total = 0.0;
            for &(d2, label) in &heap[..k] {
                let w = 1.0 / (d2.sqrt() + 1e-9);
                pos += w * f64::from(label);
                total += w;
            }
            out.push(if total > 0.0 { pos / total } else { 0.5 });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;
    use crate::preprocess::Standardizer;

    fn blobs() -> (Matrix, Vec<u8>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let j = (i % 10) as f64 * 0.03;
            rows.push(vec![j, -j]);
            y.push(0u8);
            rows.push(vec![2.0 + j, 2.0 - j]);
            y.push(1u8);
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs();
        let mut knn = KnnClassifier::default();
        knn.fit(&x, &y).unwrap();
        let p = knn.predict_proba(&x).unwrap();
        assert_eq!(roc_auc(&y, &p), 1.0);
    }

    #[test]
    fn scale_sensitivity_fixed_by_normalization() {
        // Second feature swamps the first unless the data is standardized —
        // the paper's KNN-normalization argument in miniature.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let signal = f64::from(i % 2); // the discriminative feature
            let noise = ((i * 37) % 100) as f64 * 1000.0; // huge-scale noise
            rows.push(vec![signal, noise]);
            y.push((i % 2) as u8);
        }
        let x = Matrix::from_rows(rows).unwrap();
        // Hold out half the samples (both classes) so queries are never
        // their own nearest neighbor.
        let train_idx: Vec<usize> = (0..200).filter(|i| i % 4 >= 2).collect();
        let test_idx: Vec<usize> = (0..200).filter(|i| i % 4 < 2).collect();
        let pick = |idx: &[usize]| -> Vec<u8> { idx.iter().map(|&i| y[i]).collect() };
        let (x_tr, x_te) = (x.take_rows(&train_idx), x.take_rows(&test_idx));
        let (y_tr, y_te) = (pick(&train_idx), pick(&test_idx));

        let mut raw = KnnClassifier::new(5);
        raw.fit(&x_tr, &y_tr).unwrap();
        let auc_raw = roc_auc(&y_te, &raw.predict_proba(&x_te).unwrap());

        let s = Standardizer::fit(&x_tr).unwrap();
        let (xs_tr, xs_te) = (s.transform(&x_tr).unwrap(), s.transform(&x_te).unwrap());
        let mut norm = KnnClassifier::new(5);
        norm.fit(&xs_tr, &y_tr).unwrap();
        let auc_norm = roc_auc(&y_te, &norm.predict_proba(&xs_te).unwrap());
        assert!(
            auc_norm > auc_raw + 0.1,
            "normalized {auc_norm} vs raw {auc_raw}"
        );
        assert!(auc_norm > 0.9, "normalized only {auc_norm}");
    }

    #[test]
    fn k_clamped_to_training_size() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let y = vec![0, 1];
        let mut knn = KnnClassifier::new(50);
        knn.fit(&x, &y).unwrap();
        let p = knn.predict_proba(&x).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn not_fitted_rejected() {
        let knn = KnnClassifier::default();
        assert!(matches!(
            knn.predict_proba(&Matrix::zeros(1, 1)),
            Err(MlError::NotFitted)
        ));
    }
}
