//! Evaluation drivers: fit the five models on a train/test split and report
//! AUC per model (Tables 4, 5 and 7), plus k-fold cross-validation.
//!
//! Model kinds and CV folds are evaluated in parallel on the
//! [`smartfeat_par`] pool. Each unit of work (one model kind, one fold) is
//! independently seeded, so scores are bit-identical for any thread count.
//! The failed-training fallback (random-guess AUC of 50.0) is computed
//! inside each model's own task with no shared mutable state, so one model
//! kind failing to train cannot poison — or race with — the others.

use crate::error::Result;
use crate::matrix::Matrix;
use crate::metrics::{mean, median, roc_auc};
use crate::model::ModelKind;
use crate::preprocess::Standardizer;

/// AUC per model on one (train, test) evaluation, as percentages
/// (the paper reports AUC × 100).
#[derive(Debug, Clone)]
pub struct ModelScores {
    /// `(model, auc_percent)` in [`ModelKind::all`] order.
    pub scores: Vec<(ModelKind, f64)>,
}

impl ModelScores {
    /// Average AUC across models (Table 4's cell).
    pub fn average(&self) -> f64 {
        mean(&self.scores.iter().map(|(_, a)| *a).collect::<Vec<_>>())
    }

    /// Median AUC across models (Table 5's cell).
    pub fn median(&self) -> f64 {
        median(&self.scores.iter().map(|(_, a)| *a).collect::<Vec<_>>())
    }

    /// AUC of one model, if present.
    pub fn get(&self, kind: ModelKind) -> Option<f64> {
        self.scores
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| *a)
    }
}

/// Fit every model of `models` on `(x_train, y_train)`, score AUC (× 100)
/// on `(x_test, y_test)`. LR/DNN inputs are standardized on the train split.
///
/// A model that fails to train (e.g. poisoned features from an unsafe
/// baseline transformation) scores 50.0 — the AUC of random guessing —
/// mirroring how the paper counts CAAFE's Diabetes failure.
pub fn evaluate_models(
    models: &[ModelKind],
    x_train: &Matrix,
    y_train: &[u8],
    x_test: &Matrix,
    y_test: &[u8],
    seed: u64,
) -> Result<ModelScores> {
    evaluate_models_threaded(models, x_train, y_train, x_test, y_test, seed, 0)
}

/// [`evaluate_models`] with an explicit thread count (0 = auto, 1 = exact
/// serial path). Scores are bit-identical for any value: each model kind
/// is an independently seeded task and results are collected in `models`
/// order by the ordered `par_map`.
pub fn evaluate_models_threaded(
    models: &[ModelKind],
    x_train: &Matrix,
    y_train: &[u8],
    x_test: &Matrix,
    y_test: &[u8],
    seed: u64,
    threads: usize,
) -> Result<ModelScores> {
    let standardized = Standardizer::fit_transform(x_train, x_test).ok();
    let threads = smartfeat_par::resolve_threads(threads);
    let scores = smartfeat_par::par_map_indexed(threads, models.len(), |i| {
        let kind = models[i];
        let (tr, te): (&Matrix, &Matrix) = if kind.wants_standardized_input() {
            match &standardized {
                Some((tr, te)) => (tr, te),
                None => (x_train, x_test),
            }
        } else {
            (x_train, x_test)
        };
        // Runs on pool workers: the work registry aggregates through
        // order-independent counters, so this is determinism-safe.
        let auc = smartfeat_obs::global::time("ml.eval.model", || {
            score_one_model(kind, tr, y_train, te, y_test, seed, i)
        });
        (kind, auc)
    });
    Ok(ModelScores { scores })
}

/// Fit and score one model; a training or prediction failure scores 50.0
/// (random guessing) — the paper's convention for e.g. CAAFE's Diabetes
/// failure. Runs inside one pool task: all state is task-local, so the
/// fallback is thread-safe by construction.
fn score_one_model(
    kind: ModelKind,
    x_train: &Matrix,
    y_train: &[u8],
    x_test: &Matrix,
    y_test: &[u8],
    seed: u64,
    index: usize,
) -> f64 {
    let mut model = kind.build(seed.wrapping_add(index as u64 * 7919));
    match model.fit(x_train, y_train) {
        Ok(()) => match model.predict_proba(x_test) {
            Ok(p) => roc_auc(y_test, &p) * 100.0,
            Err(_) => 50.0,
        },
        Err(_) => 50.0,
    }
}

/// [`evaluate_models`] over all five paper models.
pub fn evaluate_all_models(
    x_train: &Matrix,
    y_train: &[u8],
    x_test: &Matrix,
    y_test: &[u8],
    seed: u64,
) -> Result<ModelScores> {
    evaluate_models(&ModelKind::all(), x_train, y_train, x_test, y_test, seed)
}

/// K-fold cross-validated AUC (× 100) for a single model kind.
pub fn kfold_cv_auc(kind: ModelKind, x: &Matrix, y: &[u8], k: usize, seed: u64) -> Result<f64> {
    kfold_cv_auc_threaded(kind, x, y, k, seed, 0)
}

/// [`kfold_cv_auc`] with an explicit thread count (0 = auto, 1 = exact
/// serial path). Folds are independent — each derives its own seed from
/// `seed + fold_id` — and fold AUCs are averaged in fold order, so the
/// result is bit-identical for any thread count.
pub fn kfold_cv_auc_threaded(
    kind: ModelKind,
    x: &Matrix,
    y: &[u8],
    k: usize,
    seed: u64,
    threads: usize,
) -> Result<f64> {
    let folds = smartfeat_frame::sample::kfold_indices(x.rows(), k, seed)
        .map_err(|e| crate::error::MlError::InvalidParameter(e.to_string()))?;
    let threads = smartfeat_par::resolve_threads(threads);
    let aucs = smartfeat_par::try_par_map_indexed(threads, folds.len(), |fold_id| {
        smartfeat_obs::global::time("ml.cv.fold", || {
            let (train_idx, valid_idx) = &folds[fold_id];
            let x_train = x.take_rows(train_idx);
            let x_valid = x.take_rows(valid_idx);
            let y_train: Vec<u8> = train_idx.iter().map(|&i| y[i]).collect();
            let y_valid: Vec<u8> = valid_idx.iter().map(|&i| y[i]).collect();
            // The fold's model evaluation stays serial: parallelism is at
            // the fold level here, and nested pools would only
            // oversubscribe.
            evaluate_models_threaded(
                &[kind],
                &x_train,
                &y_train,
                &x_valid,
                &y_valid,
                seed.wrapping_add(fold_id as u64),
                1,
            )
            .map(|s| s.scores[0].1)
        })
    })?;
    Ok(mean(&aucs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Matrix, Vec<u8>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64) / n as f64, ((i * 31) % 17) as f64])
            .collect();
        let y: Vec<u8> = (0..n).map(|i| u8::from(i >= n / 2)).collect();
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn evaluate_all_scores_every_model() {
        let (x, y) = linear_data(200);
        let x_train = x.take_rows(&(0..150).step_by(1).collect::<Vec<_>>());
        // interleave labels so both classes appear in both splits
        let idx_train: Vec<usize> = (0..200).filter(|i| i % 4 != 0).collect();
        let idx_test: Vec<usize> = (0..200).filter(|i| i % 4 == 0).collect();
        let _ = x_train;
        let xt = x.take_rows(&idx_train);
        let xe = x.take_rows(&idx_test);
        let yt: Vec<u8> = idx_train.iter().map(|&i| y[i]).collect();
        let ye: Vec<u8> = idx_test.iter().map(|&i| y[i]).collect();
        let s = evaluate_all_models(&xt, &yt, &xe, &ye, 42).unwrap();
        assert_eq!(s.scores.len(), 5);
        for (kind, auc) in &s.scores {
            assert!(*auc > 80.0, "{kind} scored {auc}");
        }
        assert!(s.average() > 80.0);
        assert!(s.median() > 80.0);
        assert!(s.get(ModelKind::LR).is_some());
    }

    #[test]
    fn failed_training_scores_random() {
        // Single-class training labels ⇒ every model fails ⇒ 50.0 AUC.
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![1, 1, 1];
        let s = evaluate_models(&[ModelKind::LR], &x, &y, &x, &y, 0).unwrap();
        assert_eq!(s.scores[0].1, 50.0);
    }

    #[test]
    fn kfold_cv_reasonable_on_signal() {
        let (x, y) = linear_data(120);
        let auc = kfold_cv_auc(ModelKind::LR, &x, &y, 4, 3).unwrap();
        assert!(auc > 90.0, "cv auc = {auc}");
    }

    #[test]
    fn concurrent_failure_fallback_is_isolated_per_model() {
        // Column 1 holds DBL_MAX-scale values: the raw matrix is finite
        // (trees and NB train on it), but standardization overflows the
        // column mean to infinity, poisoning LR's and the DNN's inputs
        // with NaN — exactly one failure mode, concurrent with healthy
        // training of the tree ensembles in sibling pool tasks.
        let n = 60usize;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 1e308]).collect();
        let x = Matrix::from_rows(rows).unwrap();
        let y: Vec<u8> = (0..n).map(|i| u8::from(i >= n / 2)).collect();
        let models = [ModelKind::LR, ModelKind::RF, ModelKind::ET, ModelKind::DNN];
        let s = evaluate_models_threaded(&models, &x, &y, &x, &y, 9, 4).unwrap();
        assert_eq!(
            s.get(ModelKind::LR),
            Some(50.0),
            "LR should hit the fallback"
        );
        assert_eq!(
            s.get(ModelKind::DNN),
            Some(50.0),
            "DNN should hit the fallback"
        );
        assert!(
            s.get(ModelKind::RF).unwrap() > 60.0,
            "RF trains on the raw matrix"
        );
        assert!(
            s.get(ModelKind::ET).unwrap() > 60.0,
            "ET trains on the raw matrix"
        );
    }

    #[test]
    fn median_differs_from_mean_when_skewed() {
        let scores = ModelScores {
            scores: vec![
                (ModelKind::LR, 50.0),
                (ModelKind::NB, 90.0),
                (ModelKind::RF, 91.0),
                (ModelKind::ET, 92.0),
                (ModelKind::DNN, 93.0),
            ],
        };
        assert!(scores.median() > scores.average());
        assert_eq!(scores.median(), 91.0);
    }
}
