//! Evaluation drivers: fit the five models on a train/test split and report
//! AUC per model (Tables 4, 5 and 7), plus k-fold cross-validation.

use crate::error::Result;
use crate::matrix::Matrix;
use crate::metrics::{mean, median, roc_auc};
use crate::model::ModelKind;
use crate::preprocess::Standardizer;

/// AUC per model on one (train, test) evaluation, as percentages
/// (the paper reports AUC × 100).
#[derive(Debug, Clone)]
pub struct ModelScores {
    /// `(model, auc_percent)` in [`ModelKind::all`] order.
    pub scores: Vec<(ModelKind, f64)>,
}

impl ModelScores {
    /// Average AUC across models (Table 4's cell).
    pub fn average(&self) -> f64 {
        mean(&self.scores.iter().map(|(_, a)| *a).collect::<Vec<_>>())
    }

    /// Median AUC across models (Table 5's cell).
    pub fn median(&self) -> f64 {
        median(&self.scores.iter().map(|(_, a)| *a).collect::<Vec<_>>())
    }

    /// AUC of one model, if present.
    pub fn get(&self, kind: ModelKind) -> Option<f64> {
        self.scores
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| *a)
    }
}

/// Fit every model of `models` on `(x_train, y_train)`, score AUC (× 100)
/// on `(x_test, y_test)`. LR/DNN inputs are standardized on the train split.
///
/// A model that fails to train (e.g. poisoned features from an unsafe
/// baseline transformation) scores 50.0 — the AUC of random guessing —
/// mirroring how the paper counts CAAFE's Diabetes failure.
pub fn evaluate_models(
    models: &[ModelKind],
    x_train: &Matrix,
    y_train: &[u8],
    x_test: &Matrix,
    y_test: &[u8],
    seed: u64,
) -> Result<ModelScores> {
    let standardized = Standardizer::fit_transform(x_train, x_test).ok();
    let mut scores = Vec::with_capacity(models.len());
    for (i, &kind) in models.iter().enumerate() {
        let (tr, te): (&Matrix, &Matrix) = if kind.wants_standardized_input() {
            match &standardized {
                Some((tr, te)) => (tr, te),
                None => (x_train, x_test),
            }
        } else {
            (x_train, x_test)
        };
        let mut model = kind.build(seed.wrapping_add(i as u64 * 7919));
        let auc = match model.fit(tr, y_train) {
            Ok(()) => match model.predict_proba(te) {
                Ok(p) => roc_auc(y_test, &p) * 100.0,
                Err(_) => 50.0,
            },
            Err(_) => 50.0,
        };
        scores.push((kind, auc));
    }
    Ok(ModelScores { scores })
}

/// [`evaluate_models`] over all five paper models.
pub fn evaluate_all_models(
    x_train: &Matrix,
    y_train: &[u8],
    x_test: &Matrix,
    y_test: &[u8],
    seed: u64,
) -> Result<ModelScores> {
    evaluate_models(&ModelKind::all(), x_train, y_train, x_test, y_test, seed)
}

/// K-fold cross-validated AUC (× 100) for a single model kind.
pub fn kfold_cv_auc(
    kind: ModelKind,
    x: &Matrix,
    y: &[u8],
    k: usize,
    seed: u64,
) -> Result<f64> {
    let folds = smartfeat_frame::sample::kfold_indices(x.rows(), k, seed)
        .map_err(|e| crate::error::MlError::InvalidParameter(e.to_string()))?;
    let mut aucs = Vec::with_capacity(k);
    for (fold_id, (train_idx, valid_idx)) in folds.into_iter().enumerate() {
        let x_train = x.take_rows(&train_idx);
        let x_valid = x.take_rows(&valid_idx);
        let y_train: Vec<u8> = train_idx.iter().map(|&i| y[i]).collect();
        let y_valid: Vec<u8> = valid_idx.iter().map(|&i| y[i]).collect();
        let s = evaluate_models(
            &[kind],
            &x_train,
            &y_train,
            &x_valid,
            &y_valid,
            seed.wrapping_add(fold_id as u64),
        )?;
        aucs.push(s.scores[0].1);
    }
    Ok(mean(&aucs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Matrix, Vec<u8>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64) / n as f64, ((i * 31) % 17) as f64])
            .collect();
        let y: Vec<u8> = (0..n).map(|i| u8::from(i >= n / 2)).collect();
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn evaluate_all_scores_every_model() {
        let (x, y) = linear_data(200);
        let x_train = x.take_rows(&(0..150).step_by(1).collect::<Vec<_>>());
        // interleave labels so both classes appear in both splits
        let idx_train: Vec<usize> = (0..200).filter(|i| i % 4 != 0).collect();
        let idx_test: Vec<usize> = (0..200).filter(|i| i % 4 == 0).collect();
        let _ = x_train;
        let xt = x.take_rows(&idx_train);
        let xe = x.take_rows(&idx_test);
        let yt: Vec<u8> = idx_train.iter().map(|&i| y[i]).collect();
        let ye: Vec<u8> = idx_test.iter().map(|&i| y[i]).collect();
        let s = evaluate_all_models(&xt, &yt, &xe, &ye, 42).unwrap();
        assert_eq!(s.scores.len(), 5);
        for (kind, auc) in &s.scores {
            assert!(*auc > 80.0, "{kind} scored {auc}");
        }
        assert!(s.average() > 80.0);
        assert!(s.median() > 80.0);
        assert!(s.get(ModelKind::LR).is_some());
    }

    #[test]
    fn failed_training_scores_random() {
        // Single-class training labels ⇒ every model fails ⇒ 50.0 AUC.
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![1, 1, 1];
        let s = evaluate_models(&[ModelKind::LR], &x, &y, &x, &y, 0).unwrap();
        assert_eq!(s.scores[0].1, 50.0);
    }

    #[test]
    fn kfold_cv_reasonable_on_signal() {
        let (x, y) = linear_data(120);
        let auc = kfold_cv_auc(ModelKind::LR, &x, &y, 4, 3).unwrap();
        assert!(auc > 90.0, "cv auc = {auc}");
    }

    #[test]
    fn median_differs_from_mean_when_skewed() {
        let scores = ModelScores {
            scores: vec![
                (ModelKind::LR, 50.0),
                (ModelKind::NB, 90.0),
                (ModelKind::RF, 91.0),
                (ModelKind::ET, 92.0),
                (ModelKind::DNN, 93.0),
            ],
        };
        assert!(scores.median() > scores.average());
        assert_eq!(scores.median(), 91.0);
    }
}
