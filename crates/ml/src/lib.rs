//! # smartfeat-ml
//!
//! From-scratch ML substrate reproducing the sklearn/Keras pieces the paper
//! evaluates with:
//!
//! - the five downstream classifiers — logistic regression (the paper's
//!   "LR"), Gaussian naive Bayes, random forest, extra-trees, and a 2×100
//!   ReLU MLP ("DNN");
//! - AUC (the paper's primary metric), accuracy and log-loss;
//! - train/test evaluation and k-fold cross-validation drivers;
//! - the three Table 6 feature-selection metrics: information gain (mutual
//!   information), recursive feature elimination, and tree-based Gini
//!   feature importance.
//!
//! Everything is deterministic given a seed, and all models implement the
//! common [`Classifier`] trait over a dense [`Matrix`].

pub mod cv;
pub mod error;
pub mod extra_trees;
pub mod forest;
pub mod knn;
pub mod logistic;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod nn;
pub mod preprocess;
pub mod select;
pub mod tree;

pub use cv::{
    evaluate_all_models, evaluate_models, evaluate_models_threaded, kfold_cv_auc,
    kfold_cv_auc_threaded, ModelScores,
};
pub use error::{MlError, Result};
pub use extra_trees::ExtraTrees;
pub use forest::RandomForest;
pub use matrix::Matrix;
pub use metrics::{accuracy, log_loss, roc_auc};
pub use model::{Classifier, ModelKind};
pub use preprocess::Standardizer;
