//! Feature-selection metrics for Table 6: information gain (IG), recursive
//! feature elimination (RFE), and tree-based Gini feature importance (FI).

use crate::error::Result;
use crate::forest::RandomForest;
use crate::logistic::LogisticRegression;
use crate::matrix::Matrix;
use crate::model::Classifier;
use crate::preprocess::Standardizer;
use smartfeat_frame::stats::mutual_information;

/// The three selection metrics the paper evaluates in Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMetric {
    /// Information gain (mutual information with the label).
    InformationGain,
    /// Recursive feature elimination driven by |logistic weight|.
    Rfe,
    /// Gini feature importance from a random forest.
    FeatureImportance,
}

impl SelectionMetric {
    /// Display name matching the paper's table rows (`IG@10`, …).
    pub fn name(self) -> &'static str {
        match self {
            SelectionMetric::InformationGain => "IG",
            SelectionMetric::Rfe => "RFE",
            SelectionMetric::FeatureImportance => "FI",
        }
    }

    /// All three metrics in the paper's order.
    pub fn all() -> [SelectionMetric; 3] {
        [
            SelectionMetric::InformationGain,
            SelectionMetric::Rfe,
            SelectionMetric::FeatureImportance,
        ]
    }
}

/// Rank features (indices into `x`'s columns) from most to least important
/// under the chosen metric. Deterministic given `seed`.
pub fn rank_features(
    metric: SelectionMetric,
    x: &Matrix,
    y: &[u8],
    seed: u64,
) -> Result<Vec<usize>> {
    match metric {
        SelectionMetric::InformationGain => Ok(rank_by_scores(&information_gain_scores(x, y))),
        SelectionMetric::Rfe => rfe_rank(x, y),
        SelectionMetric::FeatureImportance => {
            let mut rf = RandomForest::default_params(seed);
            rf.fit(x, y)?;
            Ok(rank_by_scores(&rf.feature_importances()?))
        }
    }
}

/// Mutual information of every feature with the binary label (10 bins).
pub fn information_gain_scores(x: &Matrix, y: &[u8]) -> Vec<f64> {
    (0..x.cols())
        .map(|j| {
            let col: Vec<Option<f64>> = x.col(j).into_iter().map(Some).collect();
            mutual_information(&col, y, 10)
        })
        .collect()
}

/// Recursive feature elimination: repeatedly fit logistic regression on the
/// surviving features (standardized), drop the feature with the smallest
/// |weight|, and record elimination order. The *last* survivor ranks first.
pub fn rfe_rank(x: &Matrix, y: &[u8]) -> Result<Vec<usize>> {
    let d = x.cols();
    let mut alive: Vec<usize> = (0..d).collect();
    let mut eliminated: Vec<usize> = Vec::with_capacity(d);
    while alive.len() > 1 {
        let sub = x.take_cols(&alive);
        let weights = match fit_lr_weights(&sub, y) {
            Some(w) => w,
            // Degenerate training set: eliminate remaining arbitrarily
            // (stable order) rather than failing the whole ranking.
            None => {
                let mut rest = alive.clone();
                rest.reverse();
                eliminated.extend(rest);
                alive.clear();
                break;
            }
        };
        let (drop_pos, _) = weights
            .iter()
            .map(|w| w.abs())
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("alive is non-empty");
        eliminated.push(alive.remove(drop_pos));
    }
    eliminated.extend(alive);
    eliminated.reverse();
    Ok(eliminated)
}

fn fit_lr_weights(x: &Matrix, y: &[u8]) -> Option<Vec<f64>> {
    let s = Standardizer::fit(x).ok()?;
    let xs = s.transform(x).ok()?;
    let mut lr = LogisticRegression::default_params();
    lr.max_iter = 100;
    lr.fit(&xs, y).ok()?;
    Some(lr.weights().to_vec())
}

/// Sort feature indices descending by score (stable on ties).
pub fn rank_by_scores(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx
}

/// Table 6's headline number: among the top-`k` ranked features, what
/// fraction satisfies `is_new` (i.e. was generated rather than original)?
pub fn top_k_new_fraction(ranked: &[usize], k: usize, is_new: &[bool]) -> f64 {
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked[..k].iter().filter(|&&i| is_new[i]).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x0 = label (perfect), x1 = half-informative, x2 = noise.
    fn layered_signal() -> (Matrix, Vec<u8>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200usize {
            let label = u8::from(i % 2 == 0);
            // Agrees with the label 75 % of the time.
            let half = if i % 8 < 6 {
                f64::from(label)
            } else {
                f64::from(1 - label)
            };
            // Constant across each (even, odd) index pair ⇒ independent of
            // the parity-defined label.
            let noise = (((i / 2) * 2654435761) % 97) as f64 / 97.0;
            rows.push(vec![f64::from(label), half, noise]);
            y.push(label);
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn information_gain_orders_by_signal() {
        let (x, y) = layered_signal();
        let ranked = rank_features(SelectionMetric::InformationGain, &x, &y, 0).unwrap();
        assert_eq!(ranked[0], 0);
        assert_eq!(ranked[2], 2);
    }

    #[test]
    fn rfe_keeps_perfect_feature_longest() {
        let (x, y) = layered_signal();
        let ranked = rank_features(SelectionMetric::Rfe, &x, &y, 0).unwrap();
        assert_eq!(ranked[0], 0);
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn forest_importance_finds_signal() {
        let (x, y) = layered_signal();
        let ranked = rank_features(SelectionMetric::FeatureImportance, &x, &y, 9).unwrap();
        assert_eq!(ranked[0], 0);
    }

    #[test]
    fn rank_by_scores_stable_on_ties() {
        assert_eq!(rank_by_scores(&[0.5, 0.9, 0.5]), vec![1, 0, 2]);
    }

    #[test]
    fn top_k_fraction() {
        let ranked = vec![3, 1, 0, 2];
        let is_new = vec![false, true, false, true];
        assert_eq!(top_k_new_fraction(&ranked, 2, &is_new), 1.0);
        assert_eq!(top_k_new_fraction(&ranked, 4, &is_new), 0.5);
        assert_eq!(top_k_new_fraction(&ranked, 0, &is_new), 0.0);
        // k larger than available features clamps.
        assert_eq!(top_k_new_fraction(&ranked, 10, &is_new), 0.5);
    }

    #[test]
    fn metric_names() {
        let names: Vec<&str> = SelectionMetric::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["IG", "RFE", "FI"]);
    }
}
