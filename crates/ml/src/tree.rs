//! CART decision trees with Gini impurity — shared by [`crate::forest`]
//! (exact best splits) and [`crate::extra_trees`] (random thresholds).

use smartfeat_rng::{Rng, SliceRandom};

use crate::error::{MlError, Result};
use crate::matrix::Matrix;

/// How many candidate features to examine at each split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (single decision tree default).
    All,
    /// `⌈sqrt(d)⌉` (random-forest default).
    Sqrt,
    /// A fixed count (clamped to `d`).
    Exact(usize),
}

impl MaxFeatures {
    /// Resolve to a concrete count for `d` features.
    pub fn resolve(self, d: usize) -> usize {
        match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Exact(k) => k.clamp(1, d),
        }
        .max(1)
        .min(d.max(1))
    }
}

/// Split search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMode {
    /// Sort each candidate feature and scan every midpoint (CART / RF).
    Exact,
    /// Draw one uniform threshold per candidate feature (extra-trees).
    Random,
}

/// Tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Candidate features per split.
    pub max_features: MaxFeatures,
    /// Split search strategy.
    pub split_mode: SplitMode,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            split_mode: SplitMode::Exact,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART binary classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    params: TreeParams,
    nodes: Vec<Node>,
    n_features: usize,
    importances: Vec<f64>,
    fitted: bool,
}

impl DecisionTree {
    /// Create an unfitted tree.
    pub fn new(params: TreeParams) -> Self {
        DecisionTree {
            params,
            nodes: Vec::new(),
            n_features: 0,
            importances: Vec::new(),
            fitted: false,
        }
    }

    /// Fit on (x, y) using `rng` for feature subsampling / random thresholds.
    /// `sample_indices` selects the (possibly bootstrapped) training rows.
    pub fn fit_indices(
        &mut self,
        x: &Matrix,
        y: &[u8],
        sample_indices: &[usize],
        rng: &mut Rng,
    ) -> Result<()> {
        if sample_indices.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                rows: x.rows(),
                labels: y.len(),
            });
        }
        self.n_features = x.cols();
        self.nodes.clear();
        self.importances = vec![0.0; x.cols()];
        let mut indices = sample_indices.to_vec();
        let total = indices.len() as f64;
        self.build(x, y, &mut indices, 0, total, rng);
        // Normalize importances to sum 1 (sklearn convention) if any.
        let sum: f64 = self.importances.iter().sum();
        if sum > 0.0 {
            for v in &mut self.importances {
                *v /= sum;
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// Fit on all rows.
    pub fn fit_all(&mut self, x: &Matrix, y: &[u8], rng: &mut Rng) -> Result<()> {
        x.check_training(y)?;
        let indices: Vec<usize> = (0..x.rows()).collect();
        self.fit_indices(x, y, &indices, rng)
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[u8],
        indices: &mut [usize],
        depth: usize,
        total: f64,
        rng: &mut Rng,
    ) -> usize {
        let n = indices.len();
        let pos = indices.iter().filter(|&&i| y[i] != 0).count();
        let prob = pos as f64 / n as f64;
        let is_pure = pos == 0 || pos == n;
        if depth >= self.params.max_depth || n < self.params.min_samples_split || is_pure {
            return self.push(Node::Leaf { prob });
        }

        let d = x.cols();
        let k = self.params.max_features.resolve(d);
        let mut features: Vec<usize> = (0..d).collect();
        if k < d {
            features.shuffle(rng);
            features.truncate(k);
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for &f in &features {
            let candidate = match self.params.split_mode {
                SplitMode::Exact => {
                    best_exact_split(x, y, indices, f, self.params.min_samples_leaf)
                }
                SplitMode::Random => {
                    random_split(x, y, indices, f, self.params.min_samples_leaf, rng)
                }
            };
            if let Some((threshold, gain)) = candidate {
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            return self.push(Node::Leaf { prob });
        };
        if gain <= 1e-12 {
            return self.push(Node::Leaf { prob });
        }
        // Weighted impurity decrease: the gain at this node, weighted by the
        // fraction of training samples reaching it.
        self.importances[feature] += gain * (n as f64 / total);
        let split_point = partition(x, indices, feature, threshold);
        let node_id = self.push(Node::Leaf { prob }); // placeholder, replaced below
        let (left_slice, right_slice) = indices.split_at_mut(split_point);
        let left = self.build(x, y, left_slice, depth + 1, total, rng);
        let right = self.build(x, y, right_slice, depth + 1, total, rng);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// P(y=1) for one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// P(y=1) for every row of `x`.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::FeatureMismatch {
                fitted: self.n_features,
                given: x.cols(),
            });
        }
        Ok((0..x.rows()).map(|i| self.predict_one(x.row(i))).collect())
    }

    /// Normalized impurity-decrease feature importances.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of tree nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Gini impurity of a node with `pos` positives among `n` samples.
#[inline]
fn gini(pos: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    2.0 * p * (1.0 - p)
}

/// Exact best split on one feature: sort the node's samples by the feature
/// and scan every boundary between distinct values. Returns
/// `(threshold, impurity_decrease)`.
fn best_exact_split(
    x: &Matrix,
    y: &[u8],
    indices: &[usize],
    feature: usize,
    min_leaf: usize,
) -> Option<(f64, f64)> {
    let n = indices.len();
    let mut pairs: Vec<(f64, u8)> = indices.iter().map(|&i| (x.get(i, feature), y[i])).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total_pos = pairs.iter().filter(|p| p.1 != 0).count();
    let parent = gini(total_pos, n);
    let mut best: Option<(f64, f64)> = None;
    let mut left_pos = 0usize;
    for i in 0..n - 1 {
        if pairs[i].1 != 0 {
            left_pos += 1;
        }
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // can't split between equal values
        }
        let left_n = i + 1;
        let right_n = n - left_n;
        if left_n < min_leaf || right_n < min_leaf {
            continue;
        }
        let right_pos = total_pos - left_pos;
        let weighted = (left_n as f64 * gini(left_pos, left_n)
            + right_n as f64 * gini(right_pos, right_n))
            / n as f64;
        let gain = parent - weighted;
        if best.is_none_or(|(_, g)| gain > g) {
            let threshold = (pairs[i].0 + pairs[i + 1].0) / 2.0;
            best = Some((threshold, gain));
        }
    }
    best
}

/// Extra-trees split: one uniform threshold in the node's value range.
fn random_split(
    x: &Matrix,
    y: &[u8],
    indices: &[usize],
    feature: usize,
    min_leaf: usize,
    rng: &mut Rng,
) -> Option<(f64, f64)> {
    let n = indices.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &i in indices {
        let v = x.get(i, feature);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo >= hi {
        return None;
    }
    let threshold = rng.gen_range(lo..hi);
    let mut left_n = 0usize;
    let mut left_pos = 0usize;
    let mut total_pos = 0usize;
    for &i in indices {
        let is_pos = y[i] != 0;
        total_pos += is_pos as usize;
        if x.get(i, feature) <= threshold {
            left_n += 1;
            left_pos += is_pos as usize;
        }
    }
    let right_n = n - left_n;
    if left_n < min_leaf || right_n < min_leaf {
        return None;
    }
    let parent = gini(total_pos, n);
    let weighted = (left_n as f64 * gini(left_pos, left_n)
        + right_n as f64 * gini(total_pos - left_pos, right_n))
        / n as f64;
    Some((threshold, parent - weighted))
}

/// In-place partition of `indices` by `x[i, feature] <= threshold`;
/// returns the boundary position.
fn partition(x: &Matrix, indices: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut store = 0;
    for i in 0..indices.len() {
        if x.get(indices[i], feature) <= threshold {
            indices.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;

    fn xor_data() -> (Matrix, Vec<u8>) {
        // XOR pattern: needs depth ≥ 2 — linear models can't solve it.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            let jitter = (i as f64 % 10.0) * 0.01;
            rows.push(vec![a + jitter, b - jitter]);
            y.push(u8::from((a > 0.5) != (b > 0.5)));
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn solves_xor() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeParams::default());
        let mut rng = Rng::seed_from_u64(0);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        let p = tree.predict_proba(&x).unwrap();
        assert!(roc_auc(&y, &p) > 0.99);
    }

    #[test]
    fn max_depth_zero_is_single_leaf() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        });
        let mut rng = Rng::seed_from_u64(0);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        assert_eq!(tree.node_count(), 1);
        let p = tree.predict_proba(&x).unwrap();
        assert!(p.iter().all(|&v| (v - 0.5).abs() < 1e-9));
    }

    #[test]
    fn importances_sum_to_one_when_splits_exist() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeParams::default());
        let mut rng = Rng::seed_from_u64(0);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        let sum: f64 = tree.importances().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut tree = DecisionTree::new(TreeParams::default());
        let mut rng = Rng::seed_from_u64(0);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        // One split + two pure leaves.
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn random_split_mode_fits() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeParams {
            split_mode: SplitMode::Random,
            max_depth: 16,
            ..TreeParams::default()
        });
        // Random-split trees only crack XOR when a threshold lands in the
        // narrow jitter bands; this seed does under the smartfeat-rng
        // stream (most seeds leave the root a zero-gain leaf).
        let mut rng = Rng::seed_from_u64(41);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        let p = tree.predict_proba(&x).unwrap();
        assert!(roc_auc(&y, &p) > 0.95);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_rows((0..10).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
        let y = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let mut tree = DecisionTree::new(TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        });
        let mut rng = Rng::seed_from_u64(0);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        // Only the midpoint split keeps 5 per side.
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn constant_feature_gives_leaf() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let y = vec![0, 1, 0, 1];
        let mut tree = DecisionTree::new(TreeParams::default());
        let mut rng = Rng::seed_from_u64(0);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(9), 9);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Exact(100).resolve(5), 5);
        assert_eq!(MaxFeatures::Exact(0).resolve(5), 1);
    }

    #[test]
    fn feature_mismatch_at_predict() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeParams::default());
        let mut rng = Rng::seed_from_u64(0);
        tree.fit_all(&x, &y, &mut rng).unwrap();
        assert!(matches!(
            tree.predict_proba(&Matrix::zeros(1, 7)),
            Err(MlError::FeatureMismatch { .. })
        ));
    }
}
