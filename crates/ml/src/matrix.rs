//! Dense row-major `f64` matrix used as model input.

use crate::error::{MlError, Result};

/// A dense row-major matrix of features: `rows` samples × `cols` features.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Build from flat row-major data.
    pub fn new(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::InvalidParameter(format!(
                "matrix data length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build from nested row vectors (each row must have equal length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let n = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != c) {
            return Err(MlError::InvalidParameter(
                "ragged rows in matrix construction".into(),
            ));
        }
        let mut data = Vec::with_capacity(n * c);
        for row in rows {
            data.extend(row);
        }
        Ok(Matrix {
            data,
            rows: n,
            cols: c,
        })
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Sample count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one sample (row slice).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// One cell.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Set one cell.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Extract one feature column as a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Gather a subset of rows into a new matrix.
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        }
    }

    /// Keep only the named feature columns, in the given order.
    pub fn take_cols(&self, col_indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * col_indices.len());
        for i in 0..self.rows {
            let row = self.row(i);
            for &j in col_indices {
                data.push(row[j]);
            }
        }
        Matrix {
            data,
            rows: self.rows,
            cols: col_indices.len(),
        }
    }

    /// True if every cell is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Flat data access (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Validate an (X, y) pair for binary classification training.
    pub fn check_training(&self, y: &[u8]) -> Result<()> {
        if self.rows != y.len() {
            return Err(MlError::ShapeMismatch {
                rows: self.rows,
                labels: y.len(),
            });
        }
        if self.rows == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let pos = y.iter().filter(|&&v| v != 0).count();
        if pos == 0 || pos == y.len() {
            return Err(MlError::SingleClass);
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_shape() {
        assert!(Matrix::new(vec![1.0, 2.0, 3.0], 2, 2).is_err());
        let m = Matrix::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn row_and_col_views() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn take_rows_and_cols() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let r = m.take_rows(&[1, 0]);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        let c = m.take_cols(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert_eq!(c.cols(), 2);
    }

    #[test]
    fn check_training_catches_problems() {
        let m = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            m.check_training(&[0]),
            Err(MlError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            m.check_training(&[0, 0]),
            Err(MlError::SingleClass)
        ));
        assert!(m.check_training(&[0, 1]).is_ok());
        let empty = Matrix::zeros(0, 3);
        assert!(matches!(
            empty.check_training(&[]),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn finite_detection() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m.set(0, 1, f64::INFINITY);
        assert!(!m.is_finite());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
