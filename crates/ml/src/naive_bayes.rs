//! Gaussian naive Bayes ("NB" in the paper's tables).

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use crate::model::Classifier;

/// Gaussian naive Bayes with per-class feature means/variances and a
/// variance floor (sklearn's `var_smoothing`).
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Variance floor as a fraction of the largest feature variance.
    pub var_smoothing: f64,
    class_log_prior: [f64; 2],
    means: [Vec<f64>; 2],
    vars: [Vec<f64>; 2],
    fitted: bool,
}

impl GaussianNb {
    /// sklearn defaults (`var_smoothing = 1e-9`).
    pub fn new() -> Self {
        GaussianNb {
            var_smoothing: 1e-9,
            class_log_prior: [0.0; 2],
            means: [Vec::new(), Vec::new()],
            vars: [Vec::new(), Vec::new()],
            fitted: false,
        }
    }
}

impl Default for GaussianNb {
    fn default() -> Self {
        GaussianNb::new()
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[u8]) -> Result<()> {
        x.check_training(y)?;
        if !x.is_finite() {
            return Err(MlError::NonFinite("training features"));
        }
        let d = x.cols();
        let mut counts = [0usize; 2];
        let mut sums = [vec![0.0; d], vec![0.0; d]];
        for (i, &label) in y.iter().enumerate() {
            let c = (label != 0) as usize;
            counts[c] += 1;
            for (s, &v) in sums[c].iter_mut().zip(x.row(i)) {
                *s += v;
            }
        }
        let mut means = [vec![0.0; d], vec![0.0; d]];
        for c in 0..2 {
            for (m, s) in means[c].iter_mut().zip(&sums[c]) {
                *m = s / counts[c] as f64;
            }
        }
        let mut vars = [vec![0.0; d], vec![0.0; d]];
        for (i, &label) in y.iter().enumerate() {
            let c = (label != 0) as usize;
            for ((v, &m), &val) in vars[c].iter_mut().zip(&means[c]).zip(x.row(i)) {
                *v += (val - m).powi(2);
            }
        }
        // Global variance floor, like sklearn: epsilon = smoothing * max var.
        let mut max_var: f64 = 0.0;
        for (class_vars, &count) in vars.iter_mut().zip(&counts) {
            for v in class_vars.iter_mut() {
                *v /= count as f64;
                max_var = max_var.max(*v);
            }
        }
        let eps = (self.var_smoothing * max_var).max(1e-12);
        for class_vars in vars.iter_mut() {
            for v in class_vars.iter_mut() {
                *v += eps;
            }
        }
        let n = y.len() as f64;
        self.class_log_prior = [(counts[0] as f64 / n).ln(), (counts[1] as f64 / n).ln()];
        self.means = means;
        self.vars = vars;
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.means[0].len() {
            return Err(MlError::FeatureMismatch {
                fitted: self.means[0].len(),
                given: x.cols(),
            });
        }
        let half_ln_2pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mut log_like = self.class_log_prior;
                for ((ll, means), vars) in log_like.iter_mut().zip(&self.means).zip(&self.vars) {
                    for ((&v, &m), &var) in row.iter().zip(means).zip(vars) {
                        *ll += -half_ln_2pi - 0.5 * var.ln() - (v - m).powi(2) / (2.0 * var);
                    }
                }
                // Softmax over the two log-likelihoods, stably.
                let m = log_like[0].max(log_like[1]);
                let e0 = (log_like[0] - m).exp();
                let e1 = (log_like[1] - m).exp();
                e1 / (e0 + e1)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;

    fn gaussian_blobs() -> (Matrix, Vec<u8>) {
        // Two well-separated diagonal Gaussians, deterministic lattice.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let jitter = (i % 10) as f64 * 0.05;
            rows.push(vec![0.0 + jitter, 0.0 - jitter]);
            y.push(0u8);
            rows.push(vec![3.0 + jitter, 3.0 - jitter]);
            y.push(1u8);
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = gaussian_blobs();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y).unwrap();
        let p = nb.predict_proba(&x).unwrap();
        assert_eq!(roc_auc(&y, &p), 1.0);
    }

    #[test]
    fn probabilities_are_valid() {
        let (x, y) = gaussian_blobs();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y).unwrap();
        for p in nb.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn constant_feature_does_not_crash() {
        let x = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 0.1],
            vec![1.0, 0.9],
        ])
        .unwrap();
        let y = vec![0, 1, 0, 1];
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y).unwrap();
        let p = nb.predict_proba(&x).unwrap();
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(roc_auc(&y, &p) > 0.9);
    }

    #[test]
    fn prior_reflects_imbalance() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0]]).unwrap();
        let y = vec![0, 0, 0, 1];
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y).unwrap();
        // At a midpoint-ish value the majority class should dominate.
        let p = nb
            .predict_proba(&Matrix::from_rows(vec![vec![0.15]]).unwrap())
            .unwrap();
        assert!(p[0] < 0.5);
    }

    #[test]
    fn not_fitted_rejected() {
        let nb = GaussianNb::new();
        assert!(matches!(
            nb.predict_proba(&Matrix::zeros(1, 1)),
            Err(MlError::NotFitted)
        ));
    }
}
