//! The paper's "DNN": a two-hidden-layer (100×100) ReLU MLP with a sigmoid
//! output, trained with Adam on mini-batches of binary cross-entropy.

use smartfeat_rng::Rng;

use crate::error::{MlError, Result};
use crate::logistic::sigmoid;
use crate::matrix::Matrix;
use crate::model::Classifier;

/// One dense layer's parameters and Adam state.
#[derive(Debug, Clone)]
struct Dense {
    w: Vec<f64>, // out × in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(n_in: usize, n_out: usize, rng: &mut Rng) -> Self {
        // He initialization for ReLU layers.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen_f64() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    /// `out = W·x + b`.
    fn forward(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n_in);
        debug_assert_eq!(out.len(), self.n_out);
        for (o, (w_row, b)) in out
            .iter_mut()
            .zip(self.w.chunks_exact(self.n_in).zip(&self.b))
        {
            let mut acc = *b;
            for (w, v) in w_row.iter().zip(x) {
                acc += w * v;
            }
            *o = acc;
        }
    }
}

/// MLP hyper-parameters and fitted state.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// Hidden layer widths (the paper uses `[100, 100]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Cap on total mini-batch updates — keeps wall-clock bounded on the
    /// large datasets (Bank/Adult), where the paper itself reports DNN
    /// timeouts for the costlier baselines.
    pub max_updates: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    seed: u64,
    layers: Vec<Dense>,
    n_features: usize,
    fitted: bool,
}

impl MlpClassifier {
    /// The paper's architecture: two hidden layers of 100 ReLU units.
    pub fn default_params(seed: u64) -> Self {
        MlpClassifier {
            hidden: vec![100, 100],
            learning_rate: 1e-3,
            batch_size: 64,
            max_epochs: 30,
            max_updates: 6000,
            weight_decay: 1e-5,
            seed,
            layers: Vec::new(),
            n_features: 0,
            fitted: false,
        }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u8]) -> Result<()> {
        x.check_training(y)?;
        if !x.is_finite() {
            return Err(MlError::NonFinite("training features"));
        }
        let n = x.rows();
        let d = x.cols();
        self.n_features = d;
        let mut rng = Rng::seed_from_u64(self.seed);

        // Build layers: d → hidden… → 1.
        let mut sizes = vec![d];
        sizes.extend(&self.hidden);
        sizes.push(1);
        self.layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();

        let n_layers = self.layers.len();
        // Pre-activation and activation buffers per layer.
        let mut zs: Vec<Vec<f64>> = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
        let mut activations: Vec<Vec<f64>> = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
        let mut deltas: Vec<Vec<f64>> = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
        // Gradient accumulators per layer.
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        let mut order: Vec<usize> = (0..n).collect();
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut t = 0usize; // Adam step counter
        'training: for _epoch in 0..self.max_epochs {
            // Fisher–Yates with the fitted rng for deterministic shuffling.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(self.batch_size) {
                if t >= self.max_updates {
                    break 'training;
                }
                for g in gw.iter_mut().chain(gb.iter_mut()) {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for &sample in batch {
                    let input = x.row(sample);
                    // Forward.
                    for l in 0..n_layers {
                        let src: &[f64] = if l == 0 { input } else { &activations[l - 1] };
                        // Split borrow: forward writes zs[l].
                        self.layers[l].forward(src, &mut zs[l]);
                        if l + 1 < n_layers {
                            for (a, &z) in activations[l].iter_mut().zip(&zs[l]) {
                                *a = z.max(0.0); // ReLU
                            }
                        } else {
                            activations[l][0] = sigmoid(zs[l][0]);
                        }
                    }
                    // Backward: BCE + sigmoid ⇒ delta = p - y.
                    deltas[n_layers - 1][0] = activations[n_layers - 1][0] - f64::from(y[sample]);
                    for l in (0..n_layers - 1).rev() {
                        let (lower, upper) = deltas.split_at_mut(l + 1);
                        let next = &self.layers[l + 1];
                        let delta_next = &upper[0];
                        let delta_here = &mut lower[l];
                        for (j, dh) in delta_here.iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for (k, dn) in delta_next.iter().enumerate() {
                                acc += next.w[k * next.n_in + j] * dn;
                            }
                            *dh = if zs[l][j] > 0.0 { acc } else { 0.0 };
                        }
                    }
                    // Accumulate gradients.
                    for l in 0..n_layers {
                        let src: &[f64] = if l == 0 { input } else { &activations[l - 1] };
                        let layer = &self.layers[l];
                        let g = &mut gw[l];
                        for (k, &dk) in deltas[l].iter().enumerate() {
                            let row = &mut g[k * layer.n_in..(k + 1) * layer.n_in];
                            for (gv, &sv) in row.iter_mut().zip(src) {
                                *gv += dk * sv;
                            }
                        }
                        for (gbv, &dk) in gb[l].iter_mut().zip(&deltas[l]) {
                            *gbv += dk;
                        }
                    }
                }
                // Adam update.
                t += 1;
                let inv_batch = 1.0 / batch.len() as f64;
                let bc1 = 1.0 - beta1.powi(t as i32);
                let bc2 = 1.0 - beta2.powi(t as i32);
                for l in 0..n_layers {
                    let layer = &mut self.layers[l];
                    for (i, w) in layer.w.iter_mut().enumerate() {
                        let g = gw[l][i] * inv_batch + self.weight_decay * *w;
                        layer.mw[i] = beta1 * layer.mw[i] + (1.0 - beta1) * g;
                        layer.vw[i] = beta2 * layer.vw[i] + (1.0 - beta2) * g * g;
                        let mhat = layer.mw[i] / bc1;
                        let vhat = layer.vw[i] / bc2;
                        *w -= self.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                    for (i, b) in layer.b.iter_mut().enumerate() {
                        let g = gb[l][i] * inv_batch;
                        layer.mb[i] = beta1 * layer.mb[i] + (1.0 - beta1) * g;
                        layer.vb[i] = beta2 * layer.vb[i] + (1.0 - beta2) * g * g;
                        let mhat = layer.mb[i] / bc1;
                        let vhat = layer.vb[i] / bc2;
                        *b -= self.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::FeatureMismatch {
                fitted: self.n_features,
                given: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        let mut buf_a: Vec<f64> = Vec::new();
        let mut buf_b: Vec<f64> = Vec::new();
        for i in 0..x.rows() {
            let mut src: &[f64] = x.row(i);
            for (l, layer) in self.layers.iter().enumerate() {
                buf_b.resize(layer.n_out, 0.0);
                layer.forward(src, &mut buf_b);
                if l + 1 < self.layers.len() {
                    for v in buf_b.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
                std::mem::swap(&mut buf_a, &mut buf_b);
                src = &buf_a;
            }
            out.push(sigmoid(buf_a[0].clamp(-60.0, 60.0)).clamp(0.0, 1.0));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;
    use crate::preprocess::Standardizer;

    fn xor_data(n: usize) -> (Matrix, Vec<u8>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            let jitter = ((i * 37) % 100) as f64 * 0.002;
            rows.push(vec![a + jitter, b - jitter]);
            y.push(u8::from((a > 0.5) != (b > 0.5)));
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data(400);
        let s = Standardizer::fit(&x).unwrap();
        let xs = s.transform(&x).unwrap();
        let mut mlp = MlpClassifier::default_params(1);
        mlp.fit(&xs, &y).unwrap();
        let p = mlp.predict_proba(&xs).unwrap();
        assert!(roc_auc(&y, &p) > 0.98, "AUC = {}", roc_auc(&y, &p));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data(100);
        let mut a = MlpClassifier::default_params(5);
        let mut b = MlpClassifier::default_params(5);
        a.max_epochs = 3;
        b.max_epochs = 3;
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn update_budget_caps_work() {
        let (x, y) = xor_data(2000);
        let mut mlp = MlpClassifier::default_params(0);
        mlp.max_updates = 10; // tiny budget: must still finish and predict
        mlp.fit(&x, &y).unwrap();
        let p = mlp.predict_proba(&x).unwrap();
        assert_eq!(p.len(), 2000);
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = xor_data(200);
        let mut mlp = MlpClassifier::default_params(2);
        mlp.max_epochs = 5;
        mlp.fit(&x, &y).unwrap();
        assert!(mlp
            .predict_proba(&x)
            .unwrap()
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn rejects_nonfinite() {
        let x = Matrix::from_rows(vec![vec![f64::NAN], vec![1.0]]).unwrap();
        // NaN became... Matrix doesn't normalize; check_training passes but
        // is_finite() fails.
        let mut mlp = MlpClassifier::default_params(0);
        assert!(matches!(mlp.fit(&x, &[0, 1]), Err(MlError::NonFinite(_))));
    }
}
