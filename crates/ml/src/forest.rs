//! Random forest ("RF"): bagged CART trees with sqrt-feature subsampling.
//!
//! Trees are trained in parallel on the [`smartfeat_par`] pool. Each tree
//! draws its own RNG from a per-tree seed derived off the forest seed with
//! a SplitMix64 jump, so the fitted ensemble is **bit-identical** for any
//! thread count (including the exact serial path at 1 thread).

use smartfeat_rng::{seed_jump, Rng};

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use crate::model::Classifier;
use crate::tree::{DecisionTree, MaxFeatures, SplitMode, TreeParams};

/// Bagging ensemble of exact-split CART trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters.
    pub tree_params: TreeParams,
    /// Bootstrap sample fraction (with replacement).
    pub bootstrap_fraction: f64,
    /// Worker threads for tree training: 0 = auto (`SMARTFEAT_THREADS`
    /// override, else hardware), 1 = exact serial path.
    pub threads: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Defaults tuned to track sklearn's `RandomForestClassifier` behaviour
    /// at a compute budget suitable for the benchmark grid.
    pub fn default_params(seed: u64) -> Self {
        RandomForest {
            n_trees: 30,
            tree_params: TreeParams {
                max_depth: 12,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: MaxFeatures::Sqrt,
                split_mode: SplitMode::Exact,
            },
            bootstrap_fraction: 1.0,
            threads: 0,
            seed,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Set the training thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Mean normalized impurity-decrease importances across trees —
    /// the Table 6 "FI" (Gini) metric.
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let d = self.n_features;
        let mut out = vec![0.0; d];
        for tree in &self.trees {
            for (o, &v) in out.iter_mut().zip(tree.importances()) {
                *o += v;
            }
        }
        let sum: f64 = out.iter().sum();
        if sum > 0.0 {
            for v in &mut out {
                *v /= sum;
            }
        }
        Ok(out)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[u8]) -> Result<()> {
        x.check_training(y)?;
        if !x.is_finite() {
            return Err(MlError::NonFinite("training features"));
        }
        let n = x.rows();
        let sample_size = ((n as f64 * self.bootstrap_fraction).round() as usize).max(1);
        self.n_features = x.cols();
        // Per-tree seeds jump off the ensemble seed by tree index —
        // `seed_jump` reproduces the historical sequential SplitMix64
        // stream exactly, so seeded forest artifacts are unchanged.
        let seed = self.seed;
        let threads = smartfeat_par::resolve_threads(self.threads);
        let params = self.tree_params;
        self.trees = smartfeat_obs::global::time("ml.forest.fit", || {
            smartfeat_par::try_par_map_indexed(threads, self.n_trees, |i| {
                // sfcheck:seed-stream(0..100)
                let mut rng = Rng::seed_from_u64(seed_jump(seed, i as u64));
                let indices: Vec<usize> = (0..sample_size).map(|_| rng.gen_range(0..n)).collect();
                let mut tree = DecisionTree::new(params);
                tree.fit_indices(x, y, &indices, &mut rng).map(|()| tree)
            })
        })?;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::FeatureMismatch {
                fitted: self.n_features,
                given: x.cols(),
            });
        }
        let mut out = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (i, o) in out.iter_mut().enumerate() {
                *o += tree.predict_one(x.row(i));
            }
        }
        let k = self.trees.len() as f64;
        for o in &mut out {
            *o /= k;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;

    fn noisy_threshold_data(seed_shift: u64) -> (Matrix, Vec<u8>) {
        // y depends on x0 > 5 with two noise features.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200u64 {
            let h = (i.wrapping_mul(2654435761).wrapping_add(seed_shift)) % 1000;
            let x0 = (i % 11) as f64;
            rows.push(vec![x0, (h % 7) as f64, ((h / 7) % 5) as f64]);
            y.push(u8::from(x0 > 5.0));
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn fits_and_ranks_signal_feature_first() {
        let (x, y) = noisy_threshold_data(0);
        let mut rf = RandomForest::default_params(42);
        rf.fit(&x, &y).unwrap();
        let p = rf.predict_proba(&x).unwrap();
        assert!(roc_auc(&y, &p) > 0.99);
        let imp = rf.feature_importances().unwrap();
        assert!(imp[0] > imp[1] && imp[0] > imp[2]);
        let total: f64 = imp.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_threshold_data(1);
        let mut a = RandomForest::default_params(7);
        let mut b = RandomForest::default_params(7);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        let (x, y) = noisy_threshold_data(2);
        for seed in [1u64, 7, 42] {
            let mut serial = RandomForest::default_params(seed).with_threads(1);
            let mut parallel = RandomForest::default_params(seed).with_threads(4);
            serial.fit(&x, &y).unwrap();
            parallel.fit(&x, &y).unwrap();
            let ps: Vec<u64> = serial
                .predict_proba(&x)
                .unwrap()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            let pp: Vec<u64> = parallel
                .predict_proba(&x)
                .unwrap()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            assert_eq!(ps, pp, "seed {seed}");
            let is: Vec<u64> = serial
                .feature_importances()
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let ip: Vec<u64> = parallel
                .feature_importances()
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(is, ip, "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_threshold_data(1);
        let mut a = RandomForest::default_params(7);
        let mut b = RandomForest::default_params(8);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_ne!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn not_fitted_errors() {
        let rf = RandomForest::default_params(0);
        assert!(matches!(
            rf.predict_proba(&Matrix::zeros(1, 3)),
            Err(MlError::NotFitted)
        ));
        assert!(matches!(rf.feature_importances(), Err(MlError::NotFitted)));
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = noisy_threshold_data(3);
        let mut rf = RandomForest::default_params(1);
        rf.n_trees = 5;
        rf.fit(&x, &y).unwrap();
        assert!(rf
            .predict_proba(&x)
            .unwrap()
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
    }
}
