//! Input preprocessing: z-score standardization fit on train, applied to test.

use crate::error::{MlError, Result};
use crate::matrix::Matrix;

/// Per-feature z-score standardizer.
///
/// Fit on the training matrix; apply to any matrix with the same feature
/// count. Zero-variance features pass through centered (scaled by 1).
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Standardizer {
    /// Learn per-feature mean and scale from `x`.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let n = x.rows() as f64;
        let cols = x.cols();
        let mut means = vec![0.0; cols];
        for i in 0..x.rows() {
            for (j, v) in x.row(i).iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; cols];
        for i in 0..x.rows() {
            for (j, v) in x.row(i).iter().enumerate() {
                vars[j] += (v - means[j]).powi(2);
            }
        }
        let scales = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Standardizer { means, scales })
    }

    /// Standardize a matrix (must have the fitted feature count).
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.means.len() {
            return Err(MlError::FeatureMismatch {
                fitted: self.means.len(),
                given: x.cols(),
            });
        }
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[j]) / self.scales[j];
                // Clamp pathological magnitudes (e.g. the unsafe-division
                // sentinel) so LR/DNN gradients stay finite; trees are
                // unaffected since they never standardize.
                *v = v.clamp(-1e6, 1e6);
            }
        }
        Ok(out)
    }

    /// Fit on `train` and transform both matrices in one call.
    pub fn fit_transform(train: &Matrix, test: &Matrix) -> Result<(Matrix, Matrix)> {
        let s = Standardizer::fit(train)?;
        Ok((s.transform(train)?, s.transform(test)?))
    }

    /// Fitted means (one per feature).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted scales (one per feature; zero-variance features report 1).
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_train_has_zero_mean_unit_var() {
        let x = Matrix::from_rows(vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ])
        .unwrap();
        let s = Standardizer::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        for j in 0..2 {
            let col = t.col(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_variance_feature_centered() {
        let x = Matrix::from_rows(vec![vec![5.0], vec![5.0]]).unwrap();
        let s = Standardizer::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    fn feature_mismatch_rejected() {
        let x = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = Standardizer::fit(&x).unwrap();
        let bad = Matrix::from_rows(vec![vec![1.0]]).unwrap();
        assert!(matches!(
            s.transform(&bad),
            Err(MlError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        let x = Matrix::zeros(0, 2);
        assert!(matches!(
            Standardizer::fit(&x),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn extreme_sentinels_clamped() {
        let train = Matrix::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let s = Standardizer::fit(&train).unwrap();
        let poisoned = Matrix::from_rows(vec![vec![1e30]]).unwrap();
        let t = s.transform(&poisoned).unwrap();
        assert!(t.is_finite());
        assert_eq!(t.get(0, 0), 1e6);
    }
}
