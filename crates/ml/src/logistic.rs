//! Logistic regression ("LR" in the paper's tables) trained by full-batch
//! gradient descent with L2 regularization.

use crate::error::{MlError, Result};
use crate::matrix::{dot, Matrix};
use crate::model::Classifier;

/// L2-regularized logistic regression.
///
/// Deterministic (zero-initialized, full-batch), so it needs no seed.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of gradient steps.
    pub max_iter: usize,
    /// L2 penalty strength (sklearn's `1/C` scaled by n).
    pub l2: f64,
    /// Early-stop tolerance on gradient norm.
    pub tol: f64,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LogisticRegression {
    /// sklearn-flavored defaults.
    pub fn default_params() -> Self {
        LogisticRegression {
            learning_rate: 0.1,
            max_iter: 300,
            l2: 1e-4,
            tol: 1e-6,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Fitted weights (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

/// Numerically-stable sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[u8]) -> Result<()> {
        x.check_training(y)?;
        if !x.is_finite() {
            return Err(MlError::NonFinite("training features"));
        }
        let n = x.rows();
        let d = x.cols();
        let inv_n = 1.0 / n as f64;
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut grad = vec![0.0; d];
        for _ in 0..self.max_iter {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            for (i, &label) in y.iter().enumerate() {
                let row = x.row(i);
                let p = sigmoid(dot(row, &self.weights) + self.bias);
                let err = p - f64::from(label);
                for (g, &v) in grad.iter_mut().zip(row) {
                    *g += err * v;
                }
                grad_b += err;
            }
            let mut norm = 0.0;
            for (g, w) in grad.iter_mut().zip(&self.weights) {
                *g = *g * inv_n + self.l2 * w;
                norm += *g * *g;
            }
            grad_b *= inv_n;
            norm += grad_b * grad_b;
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= self.learning_rate * g;
            }
            self.bias -= self.learning_rate * grad_b;
            if norm.sqrt() < self.tol {
                break;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.weights.len() {
            return Err(MlError::FeatureMismatch {
                fitted: self.weights.len(),
                given: x.cols(),
            });
        }
        Ok((0..x.rows())
            .map(|i| sigmoid(dot(x.row(i), &self.weights) + self.bias))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;

    fn separable() -> (Matrix, Vec<u8>) {
        // y = 1 iff x0 > 0, with margin.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let v = (i as f64 - 49.5) / 10.0;
                vec![v, (i % 7) as f64 * 0.1]
            })
            .collect();
        let y: Vec<u8> = (0..100).map(|i| u8::from(i >= 50)).collect();
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn fits_separable_data() {
        let (x, y) = separable();
        let mut lr = LogisticRegression::default_params();
        lr.fit(&x, &y).unwrap();
        let p = lr.predict_proba(&x).unwrap();
        assert!(roc_auc(&y, &p) > 0.99);
        assert!(lr.weights()[0] > 0.0);
    }

    #[test]
    fn sigmoid_stability() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-1000.0) < 1e-10);
    }

    #[test]
    fn predict_before_fit_rejected() {
        let lr = LogisticRegression::default_params();
        let x = Matrix::zeros(1, 2);
        assert!(matches!(lr.predict_proba(&x), Err(MlError::NotFitted)));
    }

    #[test]
    fn feature_mismatch_at_predict() {
        let (x, y) = separable();
        let mut lr = LogisticRegression::default_params();
        lr.fit(&x, &y).unwrap();
        let bad = Matrix::zeros(1, 5);
        assert!(matches!(
            lr.predict_proba(&bad),
            Err(MlError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn nonfinite_training_rejected() {
        let x = Matrix::from_rows(vec![vec![f64::INFINITY], vec![0.0]]).unwrap();
        let mut lr = LogisticRegression::default_params();
        assert!(matches!(lr.fit(&x, &[0, 1]), Err(MlError::NonFinite(_))));
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = separable();
        let mut a = LogisticRegression::default_params();
        let mut b = LogisticRegression::default_params();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }
}
