//! CAAFE baseline: FM-driven iterative feature generation with a
//! validation-set accept/reject step.
//!
//! Differences from SMARTFEAT, per the paper:
//! - **No operator selector**: every iteration asks the FM for one
//!   transformation free-form; the proposals are dominated by numeric
//!   combinations (with a taste for ratio features).
//! - **Validation step**: a downstream model is retrained on the
//!   validation split after every accepted candidate — the step that makes
//!   CAAFE effective ("only retains the ones that improve performance")
//!   but also slow: it is the reason it times out with the DNN on the
//!   large datasets.
//! - **Unguarded code**: generated transformations are applied as-is; a
//!   division whose denominator contains zeros produces non-finite values
//!   and crashes model training — the failure the paper reports on
//!   Diabetes.

use std::time::Duration;

use smartfeat_obs::global::stopwatch;

use smartfeat::fmout;
use smartfeat::prompts;
use smartfeat::DataAgenda;
use smartfeat_fm::FoundationModel;
use smartfeat_frame::ops::{binary_op, binary_op_unsafe, groupby_transform, AggFunc, BinaryOp};
use smartfeat_frame::sample::train_test_split;
use smartfeat_frame::{Column, DataFrame};
use smartfeat_ml::{roc_auc, Matrix, ModelKind, Standardizer};

use smartfeat_rng::Rng;

use crate::method::{AfeMethod, MethodOutput};

/// The CAAFE-style baseline.
pub struct Caafe<'a> {
    fm: &'a dyn FoundationModel,
    agenda: DataAgenda,
    /// Model used in the validation accept/reject step.
    pub validation_model: ModelKind,
    /// Feature-generation iterations (the paper uses 10).
    pub iterations: usize,
    /// Seed for the op-preference sampling.
    pub seed: u64,
}

impl<'a> Caafe<'a> {
    /// Create a CAAFE run bound to an FM handle and a dataset's agenda.
    pub fn new(
        fm: &'a dyn FoundationModel,
        agenda: DataAgenda,
        validation_model: ModelKind,
        seed: u64,
    ) -> Self {
        Caafe {
            fm,
            agenda,
            validation_model,
            iterations: 10,
            seed,
        }
    }

    /// One FM-proposed transformation. CAAFE's free-form code generation is
    /// dominated by binary numeric combinations, occasionally a group-by.
    ///
    /// Whether a generated division is zero-guarded follows CAAFE's value
    /// sampling: the prompt shows the model a handful of example rows, so
    /// the generated code handles zeros *only if the sample happened to
    /// contain one*. Columns with rare zeros slip through unguarded — the
    /// mechanism behind the paper's Diabetes failure.
    fn propose(
        &self,
        df: &DataFrame,
        agenda: &DataAgenda,
        rng: &mut Rng,
    ) -> Option<CaafeCandidate> {
        if rng.gen_f64() < 0.65 {
            let prompt = prompts::binary_sample(agenda);
            let text = self.fm.complete(&prompt).ok()?.text;
            let dict = fmout::parse_dict(&text)?;
            let left = dict.get("left")?.as_str()?;
            let right = dict.get("right")?.as_str()?;
            let op = match dict.get("op")?.as_str()?.as_str() {
                "+" => BinaryOp::Add,
                "-" => BinaryOp::Sub,
                "*" => BinaryOp::Mul,
                "/" => BinaryOp::Div,
                _ => return None,
            };
            if !agenda.has(&left) || !agenda.has(&right) || left == right {
                return None;
            }
            let guarded = op != BinaryOp::Div || sample_shows_zero(df, &right, rng);
            Some(CaafeCandidate::Binary {
                left,
                right,
                op,
                guarded,
            })
        } else {
            let prompt = prompts::highorder_sample(agenda);
            let text = self.fm.complete(&prompt).ok()?.text;
            let dict = fmout::parse_dict(&text)?;
            let group = dict.get("groupby_col")?.as_list();
            let agg_col = dict.get("agg_col")?.as_str()?;
            let func = AggFunc::parse(&dict.get("function")?.as_str()?)?;
            if group.is_empty() || group.iter().any(|g| !agenda.has(g)) || !agenda.has(&agg_col) {
                return None;
            }
            Some(CaafeCandidate::Groupby {
                group,
                agg_col,
                func,
            })
        }
    }

    /// Validation AUC of the model on (train, valid) with a feature set.
    /// Non-finite features make the fit fail — surfaced as `None`.
    fn validation_auc(
        &self,
        train: &DataFrame,
        valid: &DataFrame,
        target: &str,
        features: &[String],
    ) -> Option<f64> {
        let names: Vec<&str> = features.iter().map(String::as_str).collect();
        let x_train = raw_matrix(train, &names)?;
        let x_valid = raw_matrix(valid, &names)?;
        let y_train = train.to_labels(target).ok()?;
        let y_valid = valid.to_labels(target).ok()?;
        let (xt, xv) = if self.validation_model.wants_standardized_input() {
            // CAAFE's generated sklearn pipelines standardize; a non-finite
            // input makes StandardScaler/fit raise — reproduce by failing.
            if !x_train.is_finite() || !x_valid.is_finite() {
                return None;
            }
            Standardizer::fit_transform(&x_train, &x_valid).ok()?
        } else {
            (x_train, x_valid)
        };
        // Validation-time models run on a reduced budget (validation is a
        // screen, not the final fit); the DNN still scales with the data
        // and is what blows the wall-clock limit on the large datasets.
        let mut model: Box<dyn smartfeat_ml::Classifier> =
            if self.validation_model == ModelKind::DNN {
                let mut mlp = smartfeat_ml::nn::MlpClassifier::default_params(self.seed);
                mlp.max_epochs = 10;
                Box::new(mlp)
            } else {
                self.validation_model.build(self.seed)
            };
        model.fit(&xt, &y_train).ok()?;
        let p = model.predict_proba(&xv).ok()?;
        Some(roc_auc(&y_valid, &p))
    }
}

/// Feature matrix that *keeps* non-finite values (unlike
/// [`DataFrame::to_matrix`], which masks them) — CAAFE's generated pandas
/// code performs no such masking, so neither do we.
fn raw_matrix(df: &DataFrame, features: &[&str]) -> Option<Matrix> {
    let cols: Vec<Vec<Option<f64>>> = features
        .iter()
        .map(|&n| df.column(n).ok().map(|c| c.to_f64()))
        .collect::<Option<_>>()?;
    let n = df.n_rows();
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(cols.len());
        for col in &cols {
            row.push(col[i].unwrap_or(0.0));
        }
        rows.push(row);
    }
    Matrix::from_rows(rows).ok()
}

/// Did the FM's sampled example rows contain a zero in `col`? (5 rows,
/// like the "several examples" CAAFE serializes into its prompt.)
fn sample_shows_zero(df: &DataFrame, col: &str, rng: &mut Rng) -> bool {
    let Ok(column) = df.column(col) else {
        return true; // be conservative
    };
    let values = column.to_f64();
    if values.is_empty() {
        return true;
    }
    (0..5).any(|_| {
        let i = rng.gen_range(0..values.len());
        values[i] == Some(0.0)
    })
}

enum CaafeCandidate {
    Binary {
        left: String,
        right: String,
        op: BinaryOp,
        guarded: bool,
    },
    Groupby {
        group: Vec<String>,
        agg_col: String,
        func: AggFunc,
    },
}

impl CaafeCandidate {
    fn name(&self) -> String {
        match self {
            CaafeCandidate::Binary {
                left, right, op, ..
            } => {
                format!("caafe_{}_{}_{}", left, op.token(), right)
            }
            CaafeCandidate::Groupby {
                group,
                agg_col,
                func,
            } => format!("caafe_gb_{}_{}_{}", group.join("_"), func.name(), agg_col),
        }
    }

    /// Apply with CAAFE's generated-code semantics: guarded divisions use
    /// null-on-zero, unguarded ones produce infinities.
    fn apply(&self, df: &DataFrame) -> Option<Column> {
        match self {
            CaafeCandidate::Binary {
                left,
                right,
                op,
                guarded,
            } => {
                let (a, b) = (df.column(left).ok()?, df.column(right).ok()?);
                if *guarded {
                    binary_op(a, b, *op, &self.name()).ok()
                } else {
                    binary_op_unsafe(a, b, *op, &self.name()).ok()
                }
            }
            CaafeCandidate::Groupby {
                group,
                agg_col,
                func,
            } => {
                let groups: Vec<&str> = group.iter().map(String::as_str).collect();
                groupby_transform(df, &groups, agg_col, *func, &self.name()).ok()
            }
        }
    }
}

impl AfeMethod for Caafe<'_> {
    fn name(&self) -> &'static str {
        "CAAFE"
    }

    fn run(
        &self,
        df: &DataFrame,
        target: &str,
        _categorical: &[String],
        deadline: Duration,
    ) -> MethodOutput {
        let start = stopwatch("baselines.caafe.run");
        let mut rng = Rng::seed_from_u64(self.seed);
        let Ok((train, valid)) = train_test_split(df, 0.75, self.seed) else {
            let mut out = MethodOutput::passthrough(df);
            out.failure = Some("could not split validation set".into());
            return out;
        };

        let mut agenda = self.agenda.clone();
        let mut features: Vec<String> = df
            .column_names()
            .into_iter()
            .filter(|n| *n != target)
            .map(str::to_string)
            .collect();
        let mut frame = df.clone();
        let mut train_frame = train;
        let mut valid_frame = valid;
        let mut new_features = Vec::new();
        let mut generated_count = 0usize;
        let mut timed_out = false;

        let Some(mut best_auc) = self.validation_auc(&train_frame, &valid_frame, target, &features)
        else {
            let mut out = MethodOutput::passthrough(df);
            out.failure = Some("initial validation training failed".into());
            return out;
        };

        for _ in 0..self.iterations {
            if start.exceeded(deadline) {
                timed_out = true;
                break;
            }
            let Some(cand) = self.propose(&frame, &agenda, &mut rng) else {
                continue;
            };
            generated_count += 1;
            let name = cand.name();
            if frame.has_column(&name) {
                continue;
            }
            let (Some(full_col), Some(train_col), Some(valid_col)) = (
                cand.apply(&frame),
                cand.apply(&train_frame),
                cand.apply(&valid_frame),
            ) else {
                continue;
            };
            // Tentatively attach and validate.
            train_frame.add_column(train_col).expect("unique");
            valid_frame.add_column(valid_col).expect("unique");
            features.push(name.clone());
            match self.validation_auc(&train_frame, &valid_frame, target, &features) {
                Some(auc) if auc > best_auc => {
                    best_auc = auc;
                    frame.add_column(full_col).expect("unique");
                    agenda.push_generated(
                        &name,
                        "float",
                        None,
                        "CAAFE-generated transformation",
                        smartfeat::config::OperatorFamily::Binary,
                    );
                    new_features.push(name);
                }
                Some(_) => {
                    // Rejected: revert.
                    features.pop();
                    let _ = train_frame.drop_column(&name);
                    let _ = valid_frame.drop_column(&name);
                }
                None => {
                    // Model training crashed — the generated code poisoned
                    // the features (the paper's Diabetes divide-by-zero).
                    return MethodOutput {
                        frame: df.clone(),
                        new_features: Vec::new(),
                        generated_count,
                        selected_count: 0,
                        timed_out,
                        failure: Some(format!(
                            "generated transformation {name} produced non-finite values; \
                             downstream model training failed"
                        )),
                    };
                }
            }
        }

        MethodOutput {
            frame,
            selected_count: new_features.len(),
            new_features,
            generated_count,
            timed_out,
            failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartfeat_datasets as datasets;
    use smartfeat_fm::SimulatedFm;

    #[test]
    fn accepts_only_improving_features_on_housing() {
        let ds = datasets::by_name("Housing", 400, 3).unwrap();
        let mut df = ds.frame.clone();
        df.factorize_strings();
        let fm = SimulatedFm::gpt4(1);
        let caafe = Caafe::new(&fm, ds.agenda("RF"), ModelKind::LR, 5);
        let out = caafe.run(&df, ds.target, &[], Duration::from_secs(60));
        assert!(out.failure.is_none(), "{:?}", out.failure);
        assert!(out.generated_count > 0);
        assert!(out.selected_count <= out.generated_count);
        for f in &out.new_features {
            assert!(out.frame.has_column(f));
        }
    }

    #[test]
    fn fails_on_diabetes_divide_by_zero() {
        // Across a few seeds, at least one Diabetes run must crash on an
        // unguarded ratio against a zero-bearing denominator (paper §4.2).
        let ds = datasets::by_name("Diabetes", 300, 1).unwrap();
        let mut failed = false;
        for seed in 0..6 {
            let fm = SimulatedFm::gpt4(seed);
            let caafe = Caafe::new(&fm, ds.agenda("LR"), ModelKind::LR, seed);
            let out = caafe.run(&ds.frame, ds.target, &[], Duration::from_secs(60));
            if out.failure.is_some() {
                failed = true;
                assert!(out.new_features.is_empty());
                break;
            }
        }
        assert!(failed, "no Diabetes run hit the divide-by-zero failure");
    }

    #[test]
    fn respects_deadline() {
        let ds = datasets::by_name("Tennis", 300, 2).unwrap();
        let fm = SimulatedFm::gpt4(3);
        let caafe = Caafe::new(&fm, ds.agenda("RF"), ModelKind::RF, 3);
        let out = caafe.run(&ds.frame, ds.target, &[], Duration::ZERO);
        assert!(out.timed_out);
    }

    #[test]
    fn tennis_features_are_numeric_combinations() {
        let ds = datasets::by_name("Tennis", 400, 4).unwrap();
        let fm = SimulatedFm::gpt4(5);
        let caafe = Caafe::new(&fm, ds.agenda("RF"), ModelKind::LR, 5);
        let out = caafe.run(&ds.frame, ds.target, &[], Duration::from_secs(120));
        assert!(out.failure.is_none());
        for f in &out.new_features {
            assert!(f.starts_with("caafe_"), "{f}");
        }
    }
}
