//! Featuretools / Deep Feature Synthesis (DSM) baseline.
//!
//! Exhaustive primitive application, exactly as the paper configures it:
//! `add_numeric`, `multiply_numeric` over every numeric pair, and
//! `agg_primitives` (group-by mean) over every (categorical, numeric)
//! pair. Followed by Featuretools' stock selection: remove single-value,
//! highly-null, and highly-correlated features. No context is consulted —
//! the defining contrast with SMARTFEAT's operator selector.

use std::time::Duration;

use smartfeat_obs::global::stopwatch;

use smartfeat_frame::ops::{binary_op, groupby_transform, AggFunc, BinaryOp};
use smartfeat_frame::stats::column_pearson;
use smartfeat_frame::{Column, DataFrame};

use crate::method::{AfeMethod, MethodOutput};

/// The Featuretools-style exhaustive baseline.
#[derive(Debug, Clone)]
pub struct Featuretools {
    /// Drop one of each pair of features whose |Pearson r| exceeds this.
    pub correlation_threshold: f64,
    /// Drop features with a null fraction above this.
    pub max_null_fraction: f64,
    /// Cap on generated features (guards quadratic blow-up on wide data).
    pub max_generated: usize,
}

impl Default for Featuretools {
    fn default() -> Self {
        Featuretools {
            correlation_threshold: 0.95,
            max_null_fraction: 0.5,
            max_generated: 400,
        }
    }
}

impl AfeMethod for Featuretools {
    fn name(&self) -> &'static str {
        "Featuretools"
    }

    fn run(
        &self,
        df: &DataFrame,
        target: &str,
        categorical: &[String],
        deadline: Duration,
    ) -> MethodOutput {
        let start = stopwatch("baselines.dsm.run");
        // The paper's pipeline factorizes categoricals *before* feature
        // engineering; Featuretools' add/multiply primitives then see the
        // integer codes as ordinary numerics and happily combine them —
        // a major source of its meaningless features.
        let numeric: Vec<&Column> = df
            .columns()
            .iter()
            .filter(|c| c.name() != target && c.is_numeric())
            .collect();
        let cats: Vec<&str> = categorical
            .iter()
            .map(String::as_str)
            .filter(|c| *c != target && df.has_column(c))
            .collect();

        let mut generated: Vec<Column> = Vec::new();
        let mut timed_out = false;
        'gen: {
            // add_numeric + multiply_numeric over every pair, in column order.
            for i in 0..numeric.len() {
                for j in (i + 1)..numeric.len() {
                    if start.exceeded(deadline) {
                        timed_out = true;
                        break 'gen;
                    }
                    if generated.len() >= self.max_generated {
                        break 'gen;
                    }
                    let (a, b) = (numeric[i], numeric[j]);
                    if let Ok(c) =
                        binary_op(a, b, BinaryOp::Add, &format!("{} + {}", a.name(), b.name()))
                    {
                        generated.push(c);
                    }
                    if let Ok(c) =
                        binary_op(a, b, BinaryOp::Mul, &format!("{} * {}", a.name(), b.name()))
                    {
                        generated.push(c);
                    }
                }
            }
            // agg_primitives: Featuretools' default aggregation set over
            // every (categorical, numeric) pair — exhaustive by design.
            const AGGS: [AggFunc; 6] = [
                AggFunc::Mean,
                AggFunc::Sum,
                AggFunc::Std,
                AggFunc::Max,
                AggFunc::Min,
                AggFunc::Count,
            ];
            for g in &cats {
                for v in &numeric {
                    for func in AGGS {
                        if start.exceeded(deadline) {
                            timed_out = true;
                            break 'gen;
                        }
                        if generated.len() >= self.max_generated {
                            break 'gen;
                        }
                        if let Ok(c) = groupby_transform(
                            df,
                            &[g],
                            v.name(),
                            func,
                            &format!("{}({} by {})", func.name().to_uppercase(), v.name(), g),
                        ) {
                            generated.push(c);
                        }
                    }
                }
            }
        }
        generated.truncate(self.max_generated);
        let generated_count = generated.len();

        // Featuretools' selection: single-value, highly-null, correlated.
        let mut out_frame = df.clone();
        let mut kept: Vec<String> = Vec::new();
        for col in generated {
            if start.exceeded(deadline) {
                timed_out = true;
                break;
            }
            if col.is_constant() || col.null_fraction() > self.max_null_fraction {
                continue;
            }
            if out_frame.has_column(col.name()) {
                continue;
            }
            let correlated = out_frame.columns().iter().any(|existing| {
                existing.is_numeric()
                    && column_pearson(&col, existing)
                        .is_some_and(|r| r.abs() > self.correlation_threshold)
            });
            if correlated {
                continue;
            }
            kept.push(col.name().to_string());
            out_frame.add_column(col).expect("unique name");
        }

        MethodOutput {
            frame: out_frame,
            selected_count: kept.len(),
            new_features: kept,
            generated_count,
            timed_out,
            failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        let n = 60;
        DataFrame::from_columns(vec![
            Column::from_f64("x", (0..n).map(|i| i as f64).collect()),
            Column::from_f64("y", (0..n).map(|i| ((i * 7) % 13) as f64).collect()),
            Column::from_f64("z", (0..n).map(|i| ((i * 3) % 5) as f64).collect()),
            Column::from_strs("g", (0..n).map(|i| Some(format!("g{}", i % 4))).collect()),
            Column::from_i64("label", (0..n).map(|i| (i % 2) as i64).collect()),
        ])
        .unwrap()
    }

    #[test]
    fn generates_pairwise_and_agg_features() {
        let ft = Featuretools::default();
        let out = ft.run(
            &frame(),
            "label",
            &["g".to_string()],
            Duration::from_secs(30),
        );
        assert!(!out.timed_out);
        // 3 numeric → 3 pairs × 2 ops = 6 transforms, plus 3 numerics ×
        // 6 default agg functions over "g" = 18 aggregates ⇒ 24 generated.
        assert_eq!(out.generated_count, 24);
        // Some generated features survive selection; "x + y" itself is
        // correctly pruned for being almost perfectly correlated with x.
        assert!(out.selected_count > 0);
        assert!(out.selected_count <= out.generated_count);
        assert!(out.frame.has_column("MEAN(x by g)"));
    }

    #[test]
    fn correlated_features_pruned() {
        // y2 == 2*y ⇒ "y + y2" is perfectly correlated with y; pruned.
        let mut df = frame();
        let doubled: Vec<f64> = df
            .column("y")
            .unwrap()
            .to_f64()
            .into_iter()
            .map(|v| v.unwrap() * 2.0)
            .collect();
        df.add_column(Column::from_f64("y2", doubled)).unwrap();
        let ft = Featuretools::default();
        let out = ft.run(&df, "label", &[], Duration::from_secs(30));
        assert!(!out.new_features.iter().any(|f| f == "y + y2"));
    }

    #[test]
    fn deadline_sets_timeout_flag() {
        let ft = Featuretools::default();
        let out = ft.run(&frame(), "label", &[], Duration::ZERO);
        assert!(out.timed_out);
    }

    #[test]
    fn target_not_used_as_input() {
        let ft = Featuretools::default();
        let out = ft.run(&frame(), "label", &[], Duration::from_secs(30));
        for f in &out.new_features {
            assert!(!f.contains("label"), "{f}");
        }
    }

    #[test]
    fn max_generated_cap_respected() {
        let ft = Featuretools {
            max_generated: 3,
            ..Featuretools::default()
        };
        let out = ft.run(&frame(), "label", &[], Duration::from_secs(30));
        assert!(out.generated_count <= 3);
    }
}
