//! # smartfeat-baselines
//!
//! Re-implementations of the paper's three baselines, faithful to each
//! tool's *algorithmic skeleton*:
//!
//! - [`dsm`] — Featuretools / Deep Feature Synthesis: exhaustively apply
//!   the `add_numeric`, `multiply_numeric` and aggregation primitives, then
//!   select away highly-correlated / highly-null / single-value features.
//!   Context-agnostic: it cannot know which combinations are meaningful.
//! - [`autofeat`] — AutoFeat: build a very large pool of non-linear
//!   candidate features (two expansion steps), then run an iterative
//!   selection that keeps a handful. Deliberately compute-hungry — it is
//!   the baseline that times out on Bank and Adult in the paper.
//! - [`caafe`] — CAAFE: FM-driven iterative code generation *without* an
//!   operator selector, biased toward numeric combinations, with a
//!   validation-set accept/reject step per iteration (the step that makes
//!   it slow on large datasets) and *unguarded division* (the failure the
//!   paper reports on Diabetes).
//!
//! All three implement [`AfeMethod`] with a wall-clock deadline, so the
//! harness can reproduce the paper's one-hour-timeout behaviour at scaled
//! budgets.

pub mod autofeat;
pub mod caafe;
pub mod dsm;
pub mod method;

pub use autofeat::AutoFeat;
pub use caafe::Caafe;
pub use dsm::Featuretools;
pub use method::{AfeMethod, MethodOutput};
