//! AutoFeat baseline: large non-linear candidate expansion followed by an
//! iterative correlation-with-residual selection that keeps a handful of
//! features.
//!
//! Faithful to the real tool's cost profile: a two-step expansion produces
//! thousands of candidates (the paper observed 1 978 on Tennis), each of
//! which must be materialized and scored — which is why AutoFeat misses
//! the one-hour timeout on Bank and Adult. Like the real tool, the final
//! model is (re)built on the *selected* features; informative originals
//! that selection discards are lost, which is where its AUC regressions
//! come from.

use std::time::Duration;

use smartfeat_obs::global::{stopwatch, Stopwatch};

use smartfeat_frame::ops::{binary_op, unary_map, BinaryOp, UnaryFn};
use smartfeat_frame::stats::pearson;
use smartfeat_frame::{Column, DataFrame};
use smartfeat_ml::{Classifier, Matrix, Standardizer};

use crate::method::{AfeMethod, MethodOutput};

/// One candidate feature formula over the original numeric columns.
#[derive(Debug, Clone)]
enum Formula {
    /// `f(col)`.
    Unary(UnaryFn, usize),
    /// `f(col_a) op g(col_b)` — the second expansion step.
    Combo(UnaryFn, usize, BinaryOp, UnaryFn, usize),
}

/// The AutoFeat-style baseline.
#[derive(Debug, Clone)]
pub struct AutoFeat {
    /// Features kept by the final selection (the paper observed 5).
    pub keep: usize,
    /// Cap on expanded candidates.
    pub max_candidates: usize,
    /// Rows used when *scoring* candidates. The real tool subsamples for
    /// speed; with thousands of candidates this makes the univariate
    /// selection noisy — the mechanism behind its unstable downstream
    /// AUC in the paper. `None` scores on all rows.
    pub scoring_rows: Option<usize>,
    /// Candidates surviving the univariate screen and entering the final
    /// regularized-model selection (the real tool's "good cols").
    pub pool_size: usize,
    /// Gradient steps of the final selection fit — the pass over the *full*
    /// row count that dominates AutoFeat's wall clock on large datasets.
    pub selection_iters: usize,
}

impl Default for AutoFeat {
    fn default() -> Self {
        AutoFeat {
            keep: 5,
            max_candidates: 6000,
            scoring_rows: Some(150),
            pool_size: 200,
            selection_iters: 2400,
        }
    }
}

const UNARIES: [UnaryFn; 6] = [
    UnaryFn::Identity,
    UnaryFn::Log1pAbs,
    UnaryFn::SqrtAbs,
    UnaryFn::Square,
    UnaryFn::Cube,
    UnaryFn::Reciprocal,
];

impl AutoFeat {
    fn expand(&self, n_cols: usize) -> Vec<Formula> {
        let mut out = Vec::new();
        // Step 1: every column as-is plus its non-linear unaries — the
        // originals *compete* with the expansion in selection, exactly why
        // informative raw features can be discarded.
        for f in UNARIES.iter() {
            for c in 0..n_cols {
                out.push(Formula::Unary(*f, c));
            }
        }
        // Step 2: pairwise *multiplicative* combinations of (transformed)
        // columns — the real tool's space is products, ratios, and powers;
        // additive structure is left to the downstream linear model.
        'outer: for (ia, fa) in UNARIES.iter().enumerate() {
            for fb in UNARIES.iter().skip(ia) {
                for op in [BinaryOp::Mul, BinaryOp::Div] {
                    for a in 0..n_cols {
                        for b in 0..n_cols {
                            if a == b {
                                continue;
                            }
                            if !op.is_ordered() && a > b {
                                continue;
                            }
                            out.push(Formula::Combo(*fa, a, op, *fb, b));
                            if out.len() >= self.max_candidates {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn materialize(formula: &Formula, cols: &[&Column], index: usize) -> Option<Column> {
        match formula {
            Formula::Unary(UnaryFn::Identity, c) => {
                let mut col = cols[*c].clone();
                col.set_name(format!("af_{index}_identity_{}", cols[*c].name()));
                Some(col)
            }
            Formula::Unary(f, c) => unary_map(
                cols[*c],
                *f,
                &format!("af_{index}_{}_{}", f.name(), cols[*c].name()),
            )
            .ok(),
            Formula::Combo(fa, a, op, fb, b) => {
                let left = unary_map(cols[*a], *fa, "l").ok()?;
                let right = unary_map(cols[*b], *fb, "r").ok()?;
                binary_op(
                    &left,
                    &right,
                    *op,
                    &format!(
                        "af_{index}_{}({})_{}_{}({})",
                        fa.name(),
                        cols[*a].name(),
                        op.token(),
                        fb.name(),
                        cols[*b].name()
                    ),
                )
                .ok()
            }
        }
    }
}

impl AutoFeat {
    /// Rank the pool by |coefficient| of a regularized logistic fit on the
    /// full dataset (standardized). Falls back to pool order on any
    /// numerical failure.
    fn selection_ranking(
        &self,
        pool: &[Column],
        labels: &[Option<f64>],
        start: &Stopwatch,
        deadline: Duration,
    ) -> Vec<usize> {
        let n = labels.len();
        let mut rows: Vec<Vec<f64>> = (0..n).map(|_| Vec::with_capacity(pool.len())).collect();
        for col in pool {
            for (row, v) in rows.iter_mut().zip(col.to_f64()) {
                row.push(v.unwrap_or(0.0));
            }
        }
        let fallback: Vec<usize> = (0..pool.len()).collect();
        let Ok(x) = Matrix::from_rows(rows) else {
            return fallback;
        };
        let Ok(s) = Standardizer::fit(&x) else {
            return fallback;
        };
        let Ok(xs) = s.transform(&x) else {
            return fallback;
        };
        let y: Vec<u8> = labels
            .iter()
            .map(|v| u8::from(v.unwrap_or(0.0) != 0.0))
            .collect();
        let mut lr = smartfeat_ml::logistic::LogisticRegression::default_params();
        lr.max_iter = self.selection_iters;
        lr.l2 = 1e-2; // strong shrinkage, L1-ish sparsity pressure
        lr.tol = 0.0; // the real tool walks the whole regularization path
        if lr.fit(&xs, &y).is_err() || start.exceeded(deadline) {
            return fallback;
        }
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        let w = lr.weights().to_vec();
        idx.sort_by(|&a, &b| w[b].abs().total_cmp(&w[a].abs()));
        idx
    }
}

/// Cheap constancy check over a numeric column (avoids rendering every
/// value to a string the way `Column::is_constant` does).
fn numeric_constant(col: &Column) -> bool {
    let mut first = None;
    for v in col.to_f64().into_iter().flatten() {
        match first {
            None => first = Some(v),
            Some(f) if f != v => return false,
            _ => {}
        }
    }
    true
}

impl AfeMethod for AutoFeat {
    fn name(&self) -> &'static str {
        "AutoFeat"
    }

    fn run(
        &self,
        df: &DataFrame,
        target: &str,
        categorical: &[String],
        deadline: Duration,
    ) -> MethodOutput {
        let start = stopwatch("baselines.autofeat.run");
        // Like Featuretools, AutoFeat receives the *factorized* table the
        // paper's preprocessing produces, so category codes look like
        // ordinary numerics and enter the expansion.
        let _ = categorical;
        let numeric: Vec<&Column> = df
            .columns()
            .iter()
            .filter(|c| c.name() != target && c.is_numeric())
            .collect();
        if numeric.is_empty() {
            return MethodOutput::passthrough(df);
        }
        let labels: Vec<Option<f64>> = match df.column(target).map(|c| c.to_f64()) {
            Ok(y) => y,
            Err(e) => {
                let mut out = MethodOutput::passthrough(df);
                out.failure = Some(e.to_string());
                return out;
            }
        };

        let formulas = self.expand(numeric.len());
        let generated_count = formulas.len();

        // Scoring subsample (deterministic): the real tool subsamples rows
        // when screening thousands of candidates.
        let n_rows = df.n_rows();
        let scoring_idx: Vec<usize> = match self.scoring_rows {
            Some(k) if k < n_rows => {
                smartfeat_frame::sample::permutation(n_rows, 0xAF)[..k].to_vec()
            }
            _ => (0..n_rows).collect(),
        };
        let labels_sub: Vec<Option<f64>> = scoring_idx.iter().map(|&i| labels[i]).collect();
        let subsample = |col: &Column| -> Vec<Option<f64>> {
            let full = col.to_f64();
            scoring_idx.iter().map(|&i| full[i]).collect()
        };

        // Score every candidate by |corr with label| on the subsample,
        // materializing one at a time (the expensive pass that blows the
        // deadline on big data).
        let mut scored: Vec<(f64, Column)> = Vec::new();
        let mut timed_out = false;
        for (i, formula) in formulas.iter().enumerate() {
            if start.exceeded(deadline) {
                timed_out = true;
                break;
            }
            let Some(col) = Self::materialize(formula, &numeric, i) else {
                continue;
            };
            if col.null_fraction() > 0.3 || numeric_constant(&col) {
                continue;
            }
            let Some(r) = pearson(&subsample(&col), &labels_sub) else {
                continue;
            };
            let score = r.abs();
            // Keep the "good cols" pool of the best candidates.
            if scored.len() < self.pool_size {
                scored.push((score, col));
                scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            } else if score > scored.last().map_or(0.0, |l| l.0) {
                scored.pop();
                scored.push((score, col));
                scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            }
        }

        // Final selection: a regularized linear fit over the whole pool on
        // the *full* data (the real tool's L1 path — its dominant cost on
        // large datasets), then keep the strongest coefficients that are
        // not redundant with each other.
        let pool: Vec<Column> = scored.into_iter().map(|(_, c)| c).collect();
        let mut selected: Vec<Column> = Vec::new();
        if !pool.is_empty() && !start.exceeded(deadline) {
            let ranked = self.selection_ranking(&pool, &labels, &start, deadline);
            if start.exceeded(deadline) {
                timed_out = true;
            }
            for idx in ranked {
                if selected.len() >= self.keep {
                    break;
                }
                let col = &pool[idx];
                let redundant = selected
                    .iter()
                    .any(|s| pearson(&col.to_f64(), &s.to_f64()).is_some_and(|r| r.abs() > 0.9));
                if !redundant {
                    selected.push(col.clone());
                }
            }
        } else if start.exceeded(deadline) {
            timed_out = true;
        }

        // AutoFeat's output is the selected feature set itself; whatever
        // originals the screen did not keep are gone.
        let mut out_frame = DataFrame::new();
        let mut new_features = Vec::new();
        for col in selected {
            new_features.push(col.name().to_string());
            out_frame.add_column(col).expect("unique");
        }
        // Categorical columns ride along untouched (AutoFeat ignores them).
        for name in categorical {
            if let Ok(c) = df.column(name) {
                let _ = out_frame.add_column(c.clone());
            }
        }
        out_frame
            .add_column(df.column(target).expect("target exists").clone())
            .expect("target unique");

        MethodOutput {
            frame: out_frame,
            selected_count: new_features.len(),
            new_features,
            generated_count,
            timed_out,
            failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_f64("a", (0..n).map(|i| (i % 17) as f64 + 1.0).collect()),
            Column::from_f64("b", (0..n).map(|i| ((i * 5) % 23) as f64 + 1.0).collect()),
            Column::from_f64("c", (0..n).map(|i| ((i * 11) % 7) as f64 + 1.0).collect()),
            Column::from_i64("y", (0..n).map(|i| i64::from((i % 17) >= 8)).collect()),
        ])
        .unwrap()
    }

    #[test]
    fn expansion_is_large() {
        let af = AutoFeat::default();
        let formulas = af.expand(12);
        assert!(
            formulas.len() > 1500,
            "only {} candidates for 12 columns",
            formulas.len()
        );
    }

    #[test]
    fn selects_at_most_keep_features() {
        let af = AutoFeat::default();
        let out = af.run(&frame(300), "y", &[], Duration::from_secs(60));
        assert!(out.selected_count <= 5);
        assert!(out.generated_count > 100);
        assert!(out.frame.has_column("y"));
        assert!(!out.timed_out);
    }

    #[test]
    fn signal_feature_survives() {
        // y is a threshold of a; some transform of a should be selected or
        // a should survive the original screen.
        let af = AutoFeat::default();
        let out = af.run(&frame(300), "y", &[], Duration::from_secs(60));
        assert!(
            out.frame.has_column("a") || out.new_features.iter().any(|f| f.contains("(a)")),
            "{:?}",
            out.frame.column_names()
        );
    }

    #[test]
    fn timeout_on_zero_deadline() {
        let af = AutoFeat::default();
        let out = af.run(&frame(100), "y", &[], Duration::ZERO);
        assert!(out.timed_out);
    }

    #[test]
    fn no_numeric_columns_is_passthrough() {
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("s", &["a", "b"]),
            Column::from_i64("y", vec![0, 1]),
        ])
        .unwrap();
        let af = AutoFeat::default();
        let out = af.run(&df, "y", &["s".to_string()], Duration::from_secs(5));
        assert_eq!(out.generated_count, 0);
    }

    #[test]
    fn originals_can_be_discarded() {
        // 6 numeric originals but keep=2 ⇒ at most 2 originals survive.
        let n = 200;
        let cols: Vec<Column> = (0..6)
            .map(|k| {
                Column::from_f64(
                    format!("x{k}"),
                    (0..n).map(|i| ((i * (k + 2)) % 19) as f64).collect(),
                )
            })
            .chain([Column::from_i64(
                "y",
                (0..n).map(|i| (i % 2) as i64).collect(),
            )])
            .collect();
        let df = DataFrame::from_columns(cols).unwrap();
        let af = AutoFeat {
            keep: 2,
            ..AutoFeat::default()
        };
        let out = af.run(&df, "y", &[], Duration::from_secs(60));
        let surviving_originals = (0..6)
            .filter(|k| out.frame.has_column(&format!("x{k}")))
            .count();
        assert!(surviving_originals <= 2);
    }
}
