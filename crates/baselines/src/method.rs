//! The common interface all AFE methods (baselines and SMARTFEAT's
//! adapter in the bench harness) expose to the evaluation grid.

use std::time::Duration;

use smartfeat_frame::DataFrame;

/// What one AFE method produced on one dataset.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// The engineered frame (target column preserved).
    pub frame: DataFrame,
    /// Names of engineered features present in `frame`.
    pub new_features: Vec<String>,
    /// Candidates generated before selection (Table 6's "# generated").
    pub generated_count: usize,
    /// Features surviving selection (Table 6's "sel-N").
    pub selected_count: usize,
    /// The run hit its deadline and returned partial (or no) results.
    pub timed_out: bool,
    /// The run failed outright (e.g. poisoned the frame); message.
    pub failure: Option<String>,
}

impl MethodOutput {
    /// A pass-through output (no engineering happened).
    pub fn passthrough(df: &DataFrame) -> Self {
        MethodOutput {
            frame: df.clone(),
            new_features: Vec::new(),
            generated_count: 0,
            selected_count: 0,
            timed_out: false,
            failure: None,
        }
    }
}

/// An automated feature engineering method under benchmark.
pub trait AfeMethod {
    /// Display name used in the tables.
    fn name(&self) -> &'static str;

    /// Engineer features over `df` (already cleaned and factorized except
    /// for the string columns listed in `categorical`). Must respect
    /// `deadline` (wall clock) and set `timed_out` when exceeded.
    fn run(
        &self,
        df: &DataFrame,
        target: &str,
        categorical: &[String],
        deadline: Duration,
    ) -> MethodOutput;
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartfeat_frame::Column;

    #[test]
    fn passthrough_preserves_frame() {
        let df = DataFrame::from_columns(vec![Column::from_i64("a", vec![1, 2])]).unwrap();
        let out = MethodOutput::passthrough(&df);
        assert_eq!(out.frame.n_cols(), 1);
        assert!(out.new_features.is_empty());
        assert!(!out.timed_out);
        assert!(out.failure.is_none());
    }
}
