#!/usr/bin/env bash
# Local CI, step-runner edition: .github/workflows/ci.yml dispatches the
# named steps below — this file is the single source of truth for what
# CI runs, so a green `./ci.sh` locally means a green pipeline.
# Everything is --offline per the hermetic-build policy (zero registry
# dependencies).
#
# Usage: ./ci.sh [step...]       (no arguments = every step, in order)
# Steps: build test fmt clippy sfcheck sarif fix cache threads strategy
#        artifacts bench
set -euo pipefail
cd "$(dirname "$0")"

# One EXIT trap over a cleanup registry, so a failing step (e.g. a bench
# count-match) never leaves stale temp files behind.
CLEANUP_PATHS=()
cleanup() {
  local p
  for p in ${CLEANUP_PATHS[@]+"${CLEANUP_PATHS[@]}"}; do rm -rf "$p"; done
}
trap cleanup EXIT

step_build() {
  echo "==> tier-1: release build"
  cargo build --release --offline
}

step_test() {
  echo "==> tier-1: test suite"
  cargo test -q --offline
}

step_fmt() {
  echo "==> lint: rustfmt"
  cargo fmt --check
}

step_clippy() {
  echo "==> lint: clippy (warnings are errors)"
  cargo clippy --all-targets --offline -- -D warnings
}

step_sfcheck() {
  echo "==> sfcheck: repo-invariant static analysis"
  cargo run -p sfcheck --offline
}

step_sarif() {
  echo "==> sfcheck: SARIF artifact"
  cargo run -q -p sfcheck --offline -- --sarif > sfcheck.sarif.json
  echo "    wrote sfcheck.sarif.json ($(wc -c < sfcheck.sarif.json) bytes)"
}

step_fix() {
  echo "==> sfcheck: --fix idempotency (double pass on a temp copy)"
  local tmp first second
  tmp="$(mktemp -d)"
  CLEANUP_PATHS+=("$tmp")
  # Copy the tree (sans build products / VCS) so --fix never touches the
  # real checkout here; the second pass must apply zero fixes.
  rsync -a --exclude target --exclude .git ./ "$tmp/" 2>/dev/null \
    || cp -r ./crates ./Cargo.toml ./sfcheck.baseline.json "$tmp/"
  first="$(cargo run -q -p sfcheck --offline -- --fix --root "$tmp" | tail -1)"
  second="$(cargo run -q -p sfcheck --offline -- --fix --root "$tmp" | tail -1)"
  echo "    first:  $first"
  echo "    second: $second"
  case "$second" in
    *"applied 0 fix(es) in 0 file(s)"*) ;;
    *) echo "    ERROR: second --fix pass was not a no-op" >&2; exit 1 ;;
  esac
  if ! diff -rq --exclude target --exclude .git ./crates "$tmp/crates" > /dev/null; then
    echo "    ERROR: --fix modified a clean tree" >&2
    diff -rq --exclude target --exclude .git ./crates "$tmp/crates" >&2 || true
    exit 1
  fi
}

step_cache() {
  echo "==> sfcheck: incremental cache (cold vs warm, byte-identity + hit mode + speedup)"
  local bin=target/release/sfcheck cold_json warm_json cold_sarif warm_sarif
  local t0 t1 cold_ms warm_ms best_warm_ms i t mode
  cargo build -q --release --offline -p sfcheck
  cold_json="$(mktemp)"; warm_json="$(mktemp)"
  cold_sarif="$(mktemp)"; warm_sarif="$(mktemp)"
  CLEANUP_PATHS+=("$cold_json" "$warm_json" "$cold_sarif" "$warm_sarif")
  rm -rf target/sfcheck-cache
  t0="$(date +%s%N)"; "$bin" --json > "$cold_json"; t1="$(date +%s%N)"
  cold_ms=$(( (t1 - t0) / 1000000 ))
  "$bin" --sarif > "$cold_sarif"
  # Best of three warm runs: end-to-end millisecond timings are noisy on
  # loaded runners, so the wall-clock bound below is a loose sanity check
  # — the hard gate is the stats.json hit mode.
  best_warm_ms=""
  for i in 1 2 3; do
    t0="$(date +%s%N)"; "$bin" --json > "$warm_json"; t1="$(date +%s%N)"
    warm_ms=$(( (t1 - t0) / 1000000 ))
    if [ -z "$best_warm_ms" ] || [ "$warm_ms" -lt "$best_warm_ms" ]; then
      best_warm_ms="$warm_ms"
    fi
  done
  "$bin" --sarif > "$warm_sarif"
  echo "    cold: ${cold_ms}ms, warm (best of 3): ${best_warm_ms}ms"
  if ! cmp -s "$cold_json" "$warm_json"; then
    echo "    ERROR: warm --json output differs from cold" >&2
    diff "$cold_json" "$warm_json" | head >&2 || true
    exit 1
  fi
  if ! cmp -s "$cold_sarif" "$warm_sarif"; then
    echo "    ERROR: warm --sarif output differs from cold" >&2
    exit 1
  fi
  # The semantic cache gate: an unchanged tree must take the full-skip
  # path, and stats.json records which path ran. Wall clock can lie on a
  # loaded runner; the recorded mode cannot.
  mode="$(sed -n 's/.*"mode"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/p' target/sfcheck-cache/stats.json)"
  if [ "$mode" != "warm-full" ]; then
    echo "    ERROR: expected a warm-full cache hit on the unchanged tree, stats.json says mode='$mode'" >&2
    exit 1
  fi
  if [ $(( best_warm_ms * 2 )) -gt "$cold_ms" ]; then
    echo "    ERROR: best warm run (${best_warm_ms}ms) is not >=2x faster than cold (${cold_ms}ms)" >&2
    exit 1
  fi
  # Warm hits must be thread-count independent, like everything else.
  for t in 1 4 8; do
    SMARTFEAT_THREADS="$t" "$bin" --json > "$warm_json"
    if ! cmp -s "$cold_json" "$warm_json"; then
      echo "    ERROR: warm --json under SMARTFEAT_THREADS=$t differs from cold" >&2
      exit 1
    fi
  done
  echo "    byte-identical across cold/warm and SMARTFEAT_THREADS=1/4/8"
  mkdir -p ci-artifacts
  cp target/sfcheck-cache/stats.json ci-artifacts/sfcheck-cache-stats.json
  echo "    wrote ci-artifacts/sfcheck-cache-stats.json ($(cat ci-artifacts/sfcheck-cache-stats.json))"

  # v4 lock lints through the full binary: a fixture tree tripping all
  # four, cold/warm byte-identity, the partial path for a non-lock edit,
  # and the forced-full path for a lock-relevant edit (DESIGN.md §16).
  echo "==> sfcheck: lock-lint fixture tree (cold/warm identity + invalidation paths)"
  local fixroot lockfile fix_cold fix_warm fix_ref fmode lint
  fixroot="$(mktemp -d)"
  fix_cold="$(mktemp)"; fix_warm="$(mktemp)"; fix_ref="$(mktemp)"
  CLEANUP_PATHS+=("$fixroot" "$fix_cold" "$fix_warm" "$fix_ref")
  mkdir -p "$fixroot/crates/app/src"
  printf '[package]\nname = "app"\n' > "$fixroot/crates/app/Cargo.toml"
  lockfile="$fixroot/crates/app/src/lib.rs"
  cat > "$lockfile" <<'FIXTURE'
use std::sync::Mutex;
static ALPHA: Mutex<u64> = Mutex::new(0);
static BETA: Mutex<u64> = Mutex::new(0);
pub fn ordered() {
    let a = ALPHA.lock().unwrap();
    let b = BETA.lock().unwrap();
    drop(b);
    drop(a);
}
pub fn reversed() {
    let b = BETA.lock().unwrap();
    let a = ALPHA.lock().unwrap();
    drop(a);
    drop(b);
}
pub fn twice() {
    let a = ALPHA.lock().unwrap();
    let b = ALPHA.lock().unwrap();
    drop(b);
    drop(a);
}
pub fn held(worker: std::thread::JoinHandle<()>) {
    let a = ALPHA.lock().unwrap();
    let _r = worker.join();
    drop(a);
}
pub fn forgotten() {
    let _ = ALPHA.lock();
}
FIXTURE
  printf 'pub fn plain(n: u64) -> u64 { n + 1 }\n' > "$fixroot/crates/app/src/plain.rs"
  "$bin" --root "$fixroot" --json > "$fix_cold" || true
  for lint in lock-order-inversion double-lock held-lock-blocking guard-discipline; do
    if ! grep -q "\"$lint\"" "$fix_cold"; then
      echo "    ERROR: lock fixture did not trip $lint" >&2
      exit 1
    fi
  done
  for t in 1 4 8; do
    SMARTFEAT_THREADS="$t" "$bin" --root "$fixroot" --json > "$fix_warm" || true
    if ! cmp -s "$fix_cold" "$fix_warm"; then
      echo "    ERROR: warm lock-fixture --json under SMARTFEAT_THREADS=$t differs from cold" >&2
      exit 1
    fi
    SMARTFEAT_THREADS="$t" "$bin" --root "$fixroot" --sarif > "$fix_warm" || true
    "$bin" --root "$fixroot" --no-cache --sarif > "$fix_ref" || true
    if ! cmp -s "$fix_warm" "$fix_ref"; then
      echo "    ERROR: warm lock-fixture --sarif under SMARTFEAT_THREADS=$t differs from --no-cache" >&2
      exit 1
    fi
  done
  # A non-lock edit keeps the scoped partial path...
  printf '// trailing comment, no lock relevance\n' >> "$fixroot/crates/app/src/plain.rs"
  "$bin" --root "$fixroot" --json > "$fix_warm" || true
  fmode="$(sed -n 's/.*"mode"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/p' "$fixroot/target/sfcheck-cache/stats.json")"
  if [ "$fmode" != "warm-partial" ]; then
    echo "    ERROR: non-lock edit should take the partial path, stats.json says mode='$fmode'" >&2
    exit 1
  fi
  "$bin" --root "$fixroot" --no-cache --json > "$fix_ref" || true
  if ! cmp -s "$fix_warm" "$fix_ref"; then
    echo "    ERROR: partial-path lock-fixture --json differs from --no-cache" >&2
    exit 1
  fi
  # ...while a lock-relevant edit forces full re-analysis (order pairs
  # can span call-graph-disconnected files, so scoping would be unsound).
  printf '// touched: still mentions Mutex\n' >> "$lockfile"
  "$bin" --root "$fixroot" --json > "$fix_warm" || true
  fmode="$(sed -n 's/.*"mode"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/p' "$fixroot/target/sfcheck-cache/stats.json")"
  if [ "$fmode" != "cold" ]; then
    echo "    ERROR: lock-relevant edit must force full re-analysis, stats.json says mode='$fmode'" >&2
    exit 1
  fi
  "$bin" --root "$fixroot" --no-cache --json > "$fix_ref" || true
  if ! cmp -s "$fix_warm" "$fix_ref"; then
    echo "    ERROR: post-lock-edit --json differs from --no-cache" >&2
    exit 1
  fi
  echo "    lock fixture: all four lints live, identity holds, invalidation paths verified"
}

step_threads() {
  local t
  for t in 1 4; do
    echo "==> determinism matrix: SMARTFEAT_THREADS=$t"
    SMARTFEAT_THREADS="$t" cargo test -q --offline
  done
}

step_strategy() {
  echo "==> strategy + cascade determinism: differential oracles + 1/4/8 re-exec matrices"
  # strategy_oracle and cascade re-exec themselves per SMARTFEAT_THREADS
  # value; strategy_trace pins the blessed per-strategy trace goldens
  # and prop_search the search invariants (width/population/turn/FM
  # budget).
  cargo test -q --offline \
    --test strategy_oracle --test strategy_trace --test prop_search --test cascade
}

step_artifacts() {
  echo "==> observability artifacts: cascade CLI run (metrics + trace JSON)"
  mkdir -p ci-artifacts
  printf '%s\n' \
    'age,bmi,smoker,children,label' \
    '19,27.9,yes,0,1' '33,22.7,no,1,0' '28,33.0,no,3,0' '45,25.7,yes,2,1' \
    '52,30.9,no,0,1' '23,34.4,no,0,0' '56,39.8,no,0,1' '27,42.1,yes,1,1' \
    '19,24.6,no,1,0' '61,29.0,no,2,1' \
    > ci-artifacts/smoke.csv
  cargo run -q --offline -p smartfeat --bin smartfeat -- \
    --csv ci-artifacts/smoke.csv --target label --cascade \
    --metrics-out ci-artifacts/metrics.json \
    --trace-out ci-artifacts/trace.jsonl > /dev/null
  if ! grep -q '"routing"' ci-artifacts/metrics.json; then
    echo "    ERROR: cascade metrics lack per-family routing stats" >&2
    exit 1
  fi
  echo "    wrote ci-artifacts/metrics.json ($(wc -c < ci-artifacts/metrics.json) bytes)"
  echo "    wrote ci-artifacts/trace.jsonl ($(wc -l < ci-artifacts/trace.jsonl) events)"
}

step_bench() {
  # Not a perf gate — numbers from shared CI hardware are noise. This
  # only proves each harness runs end to end and emits one JSON line per
  # benchmark in its checked-in BENCH_*.json baseline (recorded on a
  # quiet machine; regenerate per EXPERIMENTS.md). Every baseline names
  # its bench source via a "ci-baseline: <file>" marker comment, so
  # checking in BENCH_PR10.json plus a marked bench is all a future PR
  # needs to be gated here. KEEP_BENCH_SMOKE=1 preserves the sink files
  # for CI artifact upload; otherwise the EXIT trap removes them even
  # when a count-match fails.
  local base src bench sink smoke_lines base_lines
  for base in BENCH_*.json; do
    src="$(grep -rl "ci-baseline: $base" crates/bench/benches || true)"
    if [ -z "$src" ]; then
      echo "    ERROR: no bench under crates/bench/benches carries a 'ci-baseline: $base' marker" >&2
      exit 1
    fi
    if [ "$(printf '%s\n' "$src" | wc -l)" -ne 1 ]; then
      echo "    ERROR: multiple benches claim $base: $src" >&2
      exit 1
    fi
    bench="$(basename "$src" .rs)"
    sink="$PWD/bench-smoke-$bench.json"
    if [ "${KEEP_BENCH_SMOKE:-0}" != "1" ]; then
      CLEANUP_PATHS+=("$sink")
    fi
    echo "==> bench smoke: $bench matches $base"
    rm -f "$sink"
    # The sink path must be absolute: cargo runs bench binaries with the
    # package directory as cwd, not the workspace root.
    SMARTFEAT_BENCH_SAMPLES=2 SMARTFEAT_BENCH_JSON="$sink" \
      cargo bench -p smartfeat-bench --bench "$bench" --offline > /dev/null
    smoke_lines="$(wc -l < "$sink")"
    base_lines="$(wc -l < "$base")"
    echo "    bench-smoke-$bench.json: $smoke_lines benchmarks (baseline has $base_lines)"
    if [ "$smoke_lines" -ne "$base_lines" ]; then
      echo "    ERROR: bench set drifted from $base — regenerate the baseline" >&2
      exit 1
    fi
  done
}

ALL_STEPS=(build test fmt clippy sfcheck sarif fix cache threads strategy artifacts bench)

main() {
  local steps=("$@") s
  if [ "${#steps[@]}" -eq 0 ]; then
    steps=("${ALL_STEPS[@]}")
  fi
  for s in "${steps[@]}"; do
    if ! declare -F "step_$s" > /dev/null; then
      echo "ci.sh: unknown step '$s' (known: ${ALL_STEPS[*]})" >&2
      exit 2
    fi
    "step_$s"
  done
  echo "==> ci.sh: ${steps[*]}: passed"
}

main "$@"
