#!/usr/bin/env bash
# Local CI: the exact steps .github/workflows/ci.yml runs, in the same
# order, so a green ./ci.sh means a green pipeline. Everything is
# --offline per the hermetic-build policy (zero registry dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build"
cargo build --release --offline

echo "==> tier-1: test suite"
cargo test -q --offline

echo "==> lint: rustfmt"
cargo fmt --check

echo "==> lint: clippy (warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

echo "==> sfcheck: repo-invariant static analysis"
cargo run -p sfcheck --offline

echo "==> determinism matrix: SMARTFEAT_THREADS=1"
SMARTFEAT_THREADS=1 cargo test -q --offline

echo "==> determinism matrix: SMARTFEAT_THREADS=4"
SMARTFEAT_THREADS=4 cargo test -q --offline

echo "==> ci.sh: all checks passed"
