#!/usr/bin/env bash
# Local CI: the exact steps .github/workflows/ci.yml runs, in the same
# order, so a green ./ci.sh means a green pipeline. Everything is
# --offline per the hermetic-build policy (zero registry dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build"
cargo build --release --offline

echo "==> tier-1: test suite"
cargo test -q --offline

echo "==> lint: rustfmt"
cargo fmt --check

echo "==> lint: clippy (warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

echo "==> sfcheck: repo-invariant static analysis"
cargo run -p sfcheck --offline

echo "==> sfcheck: SARIF artifact"
cargo run -q -p sfcheck --offline -- --sarif > sfcheck.sarif.json
echo "    wrote sfcheck.sarif.json ($(wc -c < sfcheck.sarif.json) bytes)"

echo "==> sfcheck: --fix idempotency (double pass on a temp copy)"
FIX_TMP="$(mktemp -d)"
trap 'rm -rf "$FIX_TMP"' EXIT
# Copy the tree (sans build products / VCS) so --fix never touches the
# real checkout here; the second pass must apply zero fixes.
rsync -a --exclude target --exclude .git ./ "$FIX_TMP/" 2>/dev/null \
  || cp -r ./crates ./Cargo.toml ./sfcheck.baseline.json "$FIX_TMP/"
FIRST="$(cargo run -q -p sfcheck --offline -- --fix --root "$FIX_TMP" | tail -1)"
SECOND="$(cargo run -q -p sfcheck --offline -- --fix --root "$FIX_TMP" | tail -1)"
echo "    first:  $FIRST"
echo "    second: $SECOND"
case "$SECOND" in
  *"applied 0 fix(es) in 0 file(s)"*) ;;
  *) echo "    ERROR: second --fix pass was not a no-op" >&2; exit 1 ;;
esac
if ! diff -rq --exclude target --exclude .git ./crates "$FIX_TMP/crates" > /dev/null; then
  echo "    ERROR: --fix modified a clean tree" >&2
  diff -rq --exclude target --exclude .git ./crates "$FIX_TMP/crates" >&2 || true
  exit 1
fi
rm -rf "$FIX_TMP"
trap - EXIT

echo "==> determinism matrix: SMARTFEAT_THREADS=1"
SMARTFEAT_THREADS=1 cargo test -q --offline

echo "==> determinism matrix: SMARTFEAT_THREADS=4"
SMARTFEAT_THREADS=4 cargo test -q --offline

echo "==> strategy determinism: differential oracle + 1/4/8 re-exec matrix"
# strategy_oracle re-execs itself per SMARTFEAT_THREADS value;
# strategy_trace pins the blessed per-strategy trace goldens and
# prop_search the search invariants (width/population/turn/FM budget).
cargo test -q --offline --test strategy_oracle --test strategy_trace --test prop_search

echo "==> bench smoke: substrates compile and run (tiny sample count)"
# Not a perf gate — numbers from shared CI hardware are noise. This only
# proves the harness runs end to end and emits parseable JSON lines in
# the same shape as the checked-in BENCH_PR6.json baseline (recorded on
# a quiet machine; regenerate per BENCHMARKS.md / EXPERIMENTS.md).
# The sink path must be absolute: cargo runs bench binaries with the
# package directory as cwd, not the workspace root.
SMARTFEAT_BENCH_SAMPLES=2 SMARTFEAT_BENCH_JSON="$PWD/bench-smoke.json" \
  cargo bench -p smartfeat-bench --bench substrates --offline > /dev/null
SMOKE_LINES="$(wc -l < bench-smoke.json)"
BASE_LINES="$(wc -l < BENCH_PR6.json)"
echo "    bench-smoke.json: $SMOKE_LINES benchmarks (baseline has $BASE_LINES)"
if [ "$SMOKE_LINES" -ne "$BASE_LINES" ]; then
  echo "    ERROR: bench set drifted from BENCH_PR6.json — regenerate the baseline" >&2
  exit 1
fi
rm -f bench-smoke.json

echo "==> bench smoke: strategies sweep matches BENCH_PR7.json"
SMARTFEAT_BENCH_SAMPLES=2 SMARTFEAT_BENCH_JSON="$PWD/bench-smoke-strategies.json" \
  cargo bench -p smartfeat-bench --bench strategies --offline > /dev/null
SMOKE_LINES="$(wc -l < bench-smoke-strategies.json)"
BASE_LINES="$(wc -l < BENCH_PR7.json)"
echo "    bench-smoke-strategies.json: $SMOKE_LINES benchmarks (baseline has $BASE_LINES)"
if [ "$SMOKE_LINES" -ne "$BASE_LINES" ]; then
  echo "    ERROR: bench set drifted from BENCH_PR7.json — regenerate the baseline" >&2
  exit 1
fi
rm -f bench-smoke-strategies.json

echo "==> ci.sh: all checks passed"
